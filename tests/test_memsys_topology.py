"""Tests for the banked-array topology layer.

The parity matrix at the core: a seeded 1x1 banked run is
*byte-identical* to the flat engine across topology x sampler x backend
x scrub, sharded runs are statistically equivalent and deterministic
across executors, and the hierarchical address map round-trips exactly
(hypothesis-driven). Also the regression home of the profile-merge fix:
``extras["profile"]`` survives :func:`repro.memsys.merge_results`.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ParameterError
from repro.memsys import (
    ArrayTopology,
    HierarchicalAddressMap,
    MemsysResult,
    ScrubPolicy,
    TOPOLOGIES,
    TopologyEngine,
    build_engine,
    merge_results,
    normalize_topology,
)
from repro.memsys.backends import numba_available


@pytest.fixture(scope="module")
def device():
    from repro.device import MTJDevice, PAPER_EVAL_DEVICE
    return MTJDevice(PAPER_EVAL_DEVICE)


#: Counter fields that must match bit-for-bit between equivalent runs.
COUNTERS = ("n_transactions", "n_reads", "n_writes", "n_scrubs",
            "bits_read", "bits_written", "write_errors",
            "disturb_flips", "retention_flips", "sneak_flips",
            "raw_bit_errors", "uncorrectable_bit_errors", "words_ok",
            "words_corrected", "words_detected", "words_silent",
            "scrub_corrected_words", "scrub_uncorrectable_words")


def counters(result):
    return {name: getattr(result, name) for name in COUNTERS}


BACKENDS = ["numpy"] + (["numba"] if numba_available() else [])


class TestArrayTopology:
    def test_flat_default(self):
        topo = ArrayTopology()
        assert topo.kind == "flat"
        assert topo.n_shards == 1
        assert (topo.sub_rows, topo.sub_cols) == (64, 64)

    def test_shard_geometry(self):
        topo = ArrayTopology("banked", banks=4, subarrays=2,
                             rows=128, cols=64)
        assert topo.n_shards == 8
        assert (topo.sub_rows, topo.sub_cols) == (32, 32)
        assert topo.shard_index(3, 1) == 7
        assert topo.shard_coords(7) == (3, 1)

    def test_cross_point_dash_normalizes(self):
        topo = ArrayTopology("cross-point", banks=2, subarrays=2,
                             rows=64, cols=64)
        assert topo.kind == "cross_point"

    def test_normalize_topology_rejects_unknown(self):
        with pytest.raises(ParameterError):
            normalize_topology("toroidal")
        for kind in TOPOLOGIES:
            assert normalize_topology(kind) == kind

    def test_flat_cannot_shard(self):
        with pytest.raises(ParameterError):
            ArrayTopology("flat", banks=2)

    def test_non_divisible_rejected(self):
        with pytest.raises(ParameterError):
            ArrayTopology("banked", banks=3, rows=64, cols=64)
        with pytest.raises(ParameterError):
            ArrayTopology("banked", subarrays=5, rows=64, cols=64)

    def test_describe(self):
        topo = ArrayTopology("banked", banks=2, subarrays=4,
                             rows=64, cols=128)
        described = topo.describe()
        assert described["n_shards"] == 8
        assert described["sub_rows"] == 32
        assert described["sub_cols"] == 32


class TestHierarchicalAddressMap:
    def test_word_counts(self):
        topo = ArrayTopology("banked", banks=2, subarrays=2,
                             rows=48, cols=48)
        amap = topo.address_map(code_bits=72)
        assert amap.words_per_shard == (24 * 24) // 72
        assert amap.n_words == 4 * amap.words_per_shard

    def test_explicit_round_trip(self):
        topo = ArrayTopology("banked", banks=2, subarrays=3,
                             rows=36, cols=36)
        amap = HierarchicalAddressMap(topo, code_bits=12)
        bank, subarray, local = amap.decompose(0)
        assert (bank, subarray, local) == (0, 0, 0)
        last = amap.n_words - 1
        assert amap.compose(*amap.decompose(last)) == last
        assert amap.shard_of(last) == topo.n_shards - 1

    def test_vectorized_round_trip(self):
        topo = ArrayTopology("banked", banks=4, subarrays=2,
                             rows=64, cols=64)
        amap = topo.address_map(code_bits=72)
        words = np.arange(amap.n_words)
        bank, subarray, local = amap.decompose(words)
        np.testing.assert_array_equal(
            amap.compose(bank, subarray, local), words)

    def test_out_of_range_rejected(self):
        amap = ArrayTopology("banked", banks=2, rows=32,
                             cols=32).address_map(code_bits=8)
        with pytest.raises(ParameterError):
            amap.decompose(amap.n_words)
        with pytest.raises(ParameterError):
            amap.decompose(-1)
        with pytest.raises(ParameterError):
            amap.compose(2, 0, 0)

    def test_too_small_subarray_rejected(self):
        topo = ArrayTopology("banked", banks=8, subarrays=8,
                             rows=16, cols=16)
        with pytest.raises(ParameterError):
            topo.address_map(code_bits=72)

    def test_shard_cells_partition_small(self):
        topo = ArrayTopology("banked", banks=2, subarrays=2,
                             rows=4, cols=4)
        amap = topo.address_map(code_bits=4)
        np.testing.assert_array_equal(amap.shard_cells(0, 0),
                                      [0, 1, 4, 5])
        np.testing.assert_array_equal(amap.shard_cells(1, 1),
                                      [10, 11, 14, 15])


#: Small divisible geometries for the hypothesis properties.
_topologies = st.builds(
    ArrayTopology,
    st.sampled_from(["banked", "cross_point"]),
    banks=st.integers(min_value=1, max_value=4),
    subarrays=st.integers(min_value=1, max_value=4),
    rows=st.sampled_from([12, 24, 48]).map(lambda r: r),
    cols=st.sampled_from([12, 24, 48]),
).filter(lambda t: t.rows % t.banks == 0
         and t.cols % t.subarrays == 0)


class TestAddressMapProperties:
    @settings(max_examples=60, deadline=None)
    @given(_topologies, st.sampled_from([3, 8, 12]),
           st.data())
    def test_round_trip_exact(self, topo, code_bits, data):
        if topo.sub_rows * topo.sub_cols < code_bits:
            return
        amap = HierarchicalAddressMap(topo, code_bits)
        word = data.draw(st.integers(min_value=0,
                                     max_value=amap.n_words - 1))
        bank, subarray, local = amap.decompose(word)
        assert 0 <= bank < topo.banks
        assert 0 <= subarray < topo.subarrays
        assert 0 <= local < amap.words_per_shard
        assert amap.compose(bank, subarray, local) == word

    @settings(max_examples=40, deadline=None)
    @given(_topologies)
    def test_shards_partition_the_array(self, topo):
        amap = HierarchicalAddressMap(topo, code_bits=1)
        pieces = [amap.shard_cells(b, s)
                  for b in range(topo.banks)
                  for s in range(topo.subarrays)]
        union = np.concatenate(pieces)
        assert union.size == topo.rows * topo.cols
        np.testing.assert_array_equal(np.sort(union),
                                      np.arange(topo.rows * topo.cols))


class TestFlatBankedParity:
    """Seeded 1x1 banked runs are byte-identical to the flat engine."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("scrub_interval", [None, 2e-4])
    @pytest.mark.parametrize("sampler", ["bernoulli", "binomial"])
    def test_monte_carlo_byte_identical(self, device, sampler,
                                        scrub_interval, backend):
        def scrub():
            return (ScrubPolicy(scrub_interval)
                    if scrub_interval else None)
        kwargs = dict(pitch=70e-9, rows=16, cols=16, sampler=sampler,
                      backend=backend, workload="read-heavy")
        flat = build_engine(device, scrub=scrub(), **kwargs)
        banked = build_engine(device, scrub=scrub(), topology="banked",
                              banks=1, subarrays=1, **kwargs)
        assert isinstance(banked, TopologyEngine)
        assert counters(flat.run(3000, rng=7)) == counters(
            banked.run(3000, rng=7))

    @pytest.mark.parametrize("sampler", ["bernoulli", "binomial"])
    def test_expected_rates_bit_identical(self, device, sampler):
        kwargs = dict(pitch=70e-9, rows=16, cols=16, sampler=sampler)
        flat = build_engine(device, **kwargs)
        banked = build_engine(device, topology="banked", banks=1,
                              subarrays=1, **kwargs)
        assert flat.expected_rates(rng=3) == banked.expected_rates(
            rng=3)

    def test_flat_topology_returns_flat_engine(self, device):
        from repro.memsys import ReliabilityEngine
        engine = build_engine(device, pitch=70e-9, rows=16, cols=16,
                              topology="flat")
        assert isinstance(engine, ReliabilityEngine)


class TestShardedRuns:
    def test_statistical_equivalence_across_shard_counts(self, device):
        """Sharding redistributes the draws; the rates must agree."""
        rates = []
        for banks, subarrays in ((1, 1), (1, 2), (2, 2)):
            engine = build_engine(device, pitch=70e-9, rows=32,
                                  cols=32, topology="banked",
                                  banks=banks, subarrays=subarrays,
                                  workload="read-heavy")
            rates.append(engine.run(40_000, rng=5).raw_ber)
        base = rates[0]
        assert base > 0
        for other in rates[1:]:
            assert other == pytest.approx(base, rel=0.35)

    def test_expected_rates_equivalent_across_shard_counts(self,
                                                           device):
        rates = []
        for banks in (1, 2, 4):
            engine = build_engine(device, pitch=70e-9, rows=32,
                                  cols=32, topology="banked",
                                  banks=banks)
            rates.append(engine.expected_rates(rng=0))
        for other in rates[1:]:
            for key in rates[0]:
                assert other[key] == pytest.approx(rates[0][key],
                                                   rel=0.25)

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_executors_byte_identical_to_serial(self, device,
                                                executor):
        engine = build_engine(device, pitch=70e-9, rows=32, cols=32,
                              topology="banked", banks=2, subarrays=2,
                              sampler="binomial")
        serial = engine.run(4000, rng=11, executor="serial")
        parallel = engine.run(4000, rng=11, executor=executor, jobs=2)
        assert counters(serial) == counters(parallel)

    def test_transaction_shares(self, device):
        engine = build_engine(device, pitch=70e-9, rows=32, cols=32,
                              topology="banked", banks=2, subarrays=2)
        assert engine.transaction_shares(10) == [3, 3, 2, 2]
        result = engine.run(3, rng=1)
        assert result.n_transactions == 3
        assert result.extras["topology"][
            "per_shard_transactions"] == [1, 1, 1]

    def test_progress_covers_the_run(self, device):
        engine = build_engine(device, pitch=70e-9, rows=32, cols=32,
                              topology="banked", banks=2, subarrays=2)
        seen = []
        with_progress = engine.run(
            4000, rng=11, batch_size=512,
            progress=lambda done, total: seen.append((done, total)))
        assert seen[-1] == (4000, 4000)
        assert all(total == 4000 for _, total in seen)
        assert counters(with_progress) == counters(
            engine.run(4000, rng=11, batch_size=512))

    def test_config_carries_topology(self, device):
        engine = build_engine(device, pitch=70e-9, rows=32, cols=32,
                              topology="banked", banks=2, subarrays=2)
        result = engine.run(1000, rng=1)
        assert result.config["topology"] == "banked"
        assert result.config["rows"] == 32
        assert result.config["sub_rows"] == 16
        assert result.config["n_shards"] == 4

    def test_address_map_matches_engine_words(self, device):
        engine = build_engine(device, pitch=70e-9, rows=48, cols=48,
                              topology="banked", banks=2, subarrays=2)
        amap = engine.address_map()
        assert amap.words_per_shard == engine.controller.words.n_words
        assert amap.n_words == 4 * engine.controller.words.n_words


class TestCrossPoint:
    def test_sneak_flips_fire_under_read_stress(self, device):
        engine = build_engine(device, pitch=70e-9, rows=32, cols=32,
                              topology="cross-point", banks=2,
                              subarrays=2, read_voltage=0.3)
        result = engine.run(20_000, rng=9)
        assert result.sneak_flips > 0
        assert result.config["topology"] == "cross_point"

    def test_banked_never_draws_sneak(self, device):
        engine = build_engine(device, pitch=70e-9, rows=32, cols=32,
                              topology="banked", banks=2, subarrays=2,
                              read_voltage=0.3)
        assert engine.run(20_000, rng=9).sneak_flips == 0
        assert engine.template.half_select_exposure == 0.0

    def test_samplers_statistically_agree_on_sneak(self, device):
        results = {}
        for sampler in ("bernoulli", "binomial"):
            engine = build_engine(device, pitch=70e-9, rows=32,
                                  cols=32, topology="cross-point",
                                  banks=2, subarrays=2,
                                  read_voltage=0.3, sampler=sampler)
            results[sampler] = engine.run(20_000, rng=9).sneak_flips
        assert results["bernoulli"] > 0 and results["binomial"] > 0
        assert results["binomial"] == pytest.approx(
            results["bernoulli"], rel=0.8)

    def test_expected_rates_exceed_banked(self, device):
        kwargs = dict(pitch=70e-9, rows=32, cols=32, banks=2,
                      subarrays=2, read_voltage=0.3)
        cross = build_engine(device, topology="cross-point", **kwargs)
        banked = build_engine(device, topology="banked", **kwargs)
        assert cross.expected_rates(rng=0)["raw_ber"] > \
            banked.expected_rates(rng=0)["raw_ber"]

    def test_exposure_scales_inversely_with_shard_size(self):
        small = TopologyEngine.half_select_exposure(
            ArrayTopology("cross_point", banks=2, subarrays=2,
                          rows=32, cols=32))
        large = TopologyEngine.half_select_exposure(
            ArrayTopology("cross_point", banks=1, subarrays=1,
                          rows=32, cols=32))
        assert small == pytest.approx(2 / 16)
        assert large == pytest.approx(2 / 32)
        assert small > large


class TestMergeResults:
    def _result(self, **overrides):
        base = dict(config={"rows": 16}, n_transactions=10, n_reads=6,
                    n_writes=4, bits_read=432, raw_bit_errors=3,
                    simulated_time=1.5)
        base.update(overrides)
        return MemsysResult(**base)

    def test_counters_sum(self):
        merged = merge_results([self._result(),
                                self._result(n_transactions=20,
                                             raw_bit_errors=5)])
        assert merged.n_transactions == 30
        assert merged.raw_bit_errors == 8
        assert merged.bits_read == 864
        assert merged.raw_ber == pytest.approx(8 / 864)

    def test_simulated_time_is_max(self):
        merged = merge_results([self._result(simulated_time=1.5),
                                self._result(simulated_time=4.0)])
        assert merged.simulated_time == 4.0

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            merge_results([])
        with pytest.raises(ParameterError):
            merge_results([object()])

    def test_config_override(self):
        merged = merge_results([self._result()],
                               config={"rows": 32, "banks": 2})
        assert merged.config == {"rows": 32, "banks": 2}

    def test_profile_extras_preserved(self, device):
        """Regression: merging used to drop ``extras["profile"]``."""
        engine = build_engine(device, pitch=70e-9, rows=16, cols=16)
        parts = [engine.run(2000, rng=seed, profile=True)
                 for seed in (1, 2)]
        merged = merge_results(parts)
        profile = merged.extras["profile"]
        for phase in ("classify", "draw", "total"):
            assert profile[phase] == pytest.approx(
                sum(p.extras["profile"][phase] for p in parts))

    def test_partial_profile_not_fabricated(self, device):
        engine = build_engine(device, pitch=70e-9, rows=16, cols=16)
        profiled = engine.run(1000, rng=1, profile=True)
        bare = engine.run(1000, rng=2)
        assert "profile" not in merge_results(
            [profiled, bare]).extras

    def test_topology_run_merges_profile(self, device):
        """Sharded profiled runs keep per-phase totals end to end."""
        engine = build_engine(device, pitch=70e-9, rows=32, cols=32,
                              topology="banked", banks=2, subarrays=2)
        result = engine.run(4000, rng=3, profile=True)
        profile = result.extras["profile"]
        assert profile["total"] > 0
        assert set(profile) >= {"classify", "draw", "place", "ecc"}
