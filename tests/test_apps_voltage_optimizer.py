"""Tests for the write-voltage optimizer (WER vs breakdown)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import BreakdownModel, WriteVoltageOptimizer
from repro.errors import ParameterError


@pytest.fixture
def optimizer(eval_device):
    return WriteVoltageOptimizer(eval_device)


@pytest.fixture
def hz_intra(eval_device):
    return eval_device.intra_stray_field()


class TestBreakdownModel:
    def test_exponential_acceleration(self):
        model = BreakdownModel(t0=1e9, gamma=10.0)
        assert (model.time_to_breakdown(1.0)
                / model.time_to_breakdown(1.1)) == pytest.approx(
            np.e, rel=1e-9)

    def test_per_pulse_probability_linear_in_width(self):
        model = BreakdownModel()
        p1 = model.per_pulse_probability(1.2, 10e-9)
        p2 = model.per_pulse_probability(1.2, 20e-9)
        assert p2 == pytest.approx(2 * p1, rel=1e-12)

    def test_probability_capped_at_one(self):
        model = BreakdownModel(t0=1e-12, gamma=1.0)
        assert model.per_pulse_probability(1.0, 1.0) == 1.0

    def test_validation(self):
        with pytest.raises(ParameterError):
            BreakdownModel(t0=-1.0)


class TestTradeoff:
    def test_total_is_u_shaped(self, optimizer, hz_intra):
        voltages = np.linspace(0.8, 1.6, 33)
        wer, bd, total = optimizer.sweep(voltages, 20e-9, hz_intra)
        # WER decreases, breakdown increases.
        assert np.all(np.diff(wer) <= 1e-15)
        assert np.all(np.diff(bd) >= -1e-18)
        # Total has an interior minimum.
        idx = int(np.argmin(total))
        assert 0 < idx < len(voltages) - 1

    def test_optimum_is_minimum(self, optimizer, hz_intra):
        v_opt = optimizer.optimal_voltage(20e-9, hz_intra)
        f_opt = optimizer.total_failure(v_opt, 20e-9, hz_intra)
        for dv in (-0.05, 0.05):
            assert f_opt <= optimizer.total_failure(
                v_opt + dv, 20e-9, hz_intra) + 1e-18

    def test_longer_pulse_lower_optimal_voltage(self, optimizer,
                                                hz_intra):
        """With more time available, less overdrive is needed and the
        breakdown term pushes the optimum down."""
        v_short = optimizer.optimal_voltage(10e-9, hz_intra)
        v_long = optimizer.optimal_voltage(40e-9, hz_intra)
        assert v_long < v_short

    def test_worst_corner_optimum(self, optimizer, eval_device):
        pitch = 1.5 * eval_device.params.ecd
        v_opt, failure = optimizer.worst_corner_optimum(20e-9, pitch)
        assert 0.8 < v_opt < 1.6
        assert 0.0 < failure < 1e-2

    def test_worst_corner_needs_more_voltage(self, optimizer,
                                             eval_device, hz_intra):
        pitch = 1.5 * eval_device.params.ecd
        v_worst, _ = optimizer.worst_corner_optimum(20e-9, pitch)
        v_intra = optimizer.optimal_voltage(20e-9, hz_intra)
        assert v_worst >= v_intra - 1e-3

    def test_bad_bounds_rejected(self, optimizer):
        with pytest.raises(ParameterError):
            optimizer.optimal_voltage(20e-9, v_bounds=(1.5, 1.0))

    def test_rejects_non_device(self):
        with pytest.raises(ParameterError):
            WriteVoltageOptimizer("device")
