"""Tests for the areal-density helpers."""

from __future__ import annotations

import pytest

from repro.arrays import areal_density_gbit_per_mm2, cell_area, density_table
from repro.arrays.density import density_gain


class TestDensityMath:
    def test_cell_area(self):
        assert cell_area(90e-9) == pytest.approx(8.1e-15)

    def test_density_value(self):
        # 90 nm pitch: 1 / (8.1e-15 m^2) bits = ~123 Gbit/mm^2... sanity:
        # 1e-6 mm^2 per m^2 and 1e9 bits per Gbit.
        density = areal_density_gbit_per_mm2(90e-9)
        assert density == pytest.approx(1 / 8.1e-15 / 1e6 / 1e9)

    def test_density_table_rows(self):
        rows = density_table([70e-9, 90e-9])
        assert len(rows) == 2
        assert rows[0][2] > rows[1][2]

    def test_gain_quadratic(self):
        assert density_gain(105e-9, 52.5e-9) == pytest.approx(4.0)
        assert density_gain(70e-9, 70e-9) == pytest.approx(1.0)

    def test_smaller_pitch_denser(self):
        assert (areal_density_gbit_per_mm2(52.5e-9)
                > areal_density_gbit_per_mm2(80e-9))
