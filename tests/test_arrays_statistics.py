"""Tests for the exact pattern-field statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arrays import InterCellCoupling, pattern_field_distribution
from repro.arrays.statistics import (
    expected_retention_failure_rate,
    worst_case_overestimate,
)
from repro.device import MTJState
from repro.errors import ParameterError
from repro.stack import build_reference_stack


@pytest.fixture(scope="module")
def coupling():
    return InterCellCoupling(build_reference_stack(55e-9), 90e-9)


class TestFieldDistribution:
    def test_probabilities_sum_to_one(self, coupling):
        dist = pattern_field_distribution(coupling)
        assert sum(dist.probabilities) == pytest.approx(1.0)

    def test_support_matches_extremes(self, coupling):
        dist = pattern_field_distribution(coupling, p_one=0.5)
        lo, hi = coupling.extremes()
        assert dist.support[0] == pytest.approx(lo, abs=1.0)
        assert dist.support[1] == pytest.approx(hi, abs=1.0)

    def test_matches_enumeration_at_half(self, coupling):
        """For p=0.5 the exact PMF must equal uniform enumeration of the
        256 patterns."""
        dist = pattern_field_distribution(coupling, p_one=0.5)
        values = coupling.hz_inter_all()
        assert dist.mean == pytest.approx(float(np.mean(values)),
                                          rel=1e-9)
        assert dist.std == pytest.approx(float(np.std(values)),
                                         rel=1e-9)

    def test_degenerate_at_p_zero(self, coupling):
        dist = pattern_field_distribution(coupling, p_one=0.0)
        assert len(dist.values) == 1
        assert dist.values[0] == pytest.approx(
            coupling.hz_inter_fast(0), abs=1.0)
        assert dist.std == pytest.approx(0.0, abs=1e-9)

    def test_degenerate_at_p_one(self, coupling):
        dist = pattern_field_distribution(coupling, p_one=1.0)
        assert dist.values[0] == pytest.approx(
            coupling.hz_inter_fast(255), abs=1.0)

    def test_mean_monotone_in_p(self, coupling):
        # More AP neighbors -> higher Hz (the FL kernels are negative
        # for P neighbors).
        means = [pattern_field_distribution(coupling, p).mean
                 for p in (0.1, 0.3, 0.5, 0.7, 0.9)]
        assert all(a < b for a, b in zip(means, means[1:]))

    def test_cdf_bounds(self, coupling):
        dist = pattern_field_distribution(coupling)
        lo, hi = dist.support
        assert dist.cdf(lo - 1.0) == 0.0
        assert dist.cdf(hi + 1.0) == pytest.approx(1.0)

    def test_expectation_of_constant(self, coupling):
        dist = pattern_field_distribution(coupling)
        assert dist.expectation(lambda _: 3.0) == pytest.approx(3.0)

    def test_rejects_bad_inputs(self, coupling):
        with pytest.raises(ParameterError):
            pattern_field_distribution("coupling")
        with pytest.raises(ParameterError):
            pattern_field_distribution(coupling, p_one=1.5)


class TestDataAwareRetention:
    def test_average_below_worst_case(self, eval_device):
        pitch = 1.5 * eval_device.params.ecd
        interval = 1e6
        avg = expected_retention_failure_rate(eval_device, pitch,
                                              interval)
        ratio = worst_case_overestimate(eval_device, pitch, interval)
        assert avg > 0
        assert ratio > 1.0

    def test_overestimate_grows_with_coupling(self, eval_device):
        ecd = eval_device.params.ecd
        dense = worst_case_overestimate(eval_device, 1.5 * ecd, 1e6)
        sparse = worst_case_overestimate(eval_device, 3.0 * ecd, 1e6)
        assert dense > sparse >= 1.0

    def test_all_zero_data_equals_worst_case(self, eval_device):
        pitch = 1.5 * eval_device.params.ecd
        ratio = worst_case_overestimate(eval_device, pitch, 1e6,
                                        p_one=0.0)
        assert ratio == pytest.approx(1.0, rel=1e-6)

    def test_ap_state_much_safer(self, eval_device):
        pitch = 2.0 * eval_device.params.ecd
        p_fail = expected_retention_failure_rate(
            eval_device, pitch, 1e6, state=MTJState.P)
        ap_fail = expected_retention_failure_rate(
            eval_device, pitch, 1e6, state=MTJState.AP)
        assert ap_fail < p_fail
