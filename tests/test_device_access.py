"""Tests for the 1T-1R write-path model."""

from __future__ import annotations

import pytest

from repro.device import (
    AccessTransistor,
    MTJDevice,
    MTJState,
    PAPER_EVAL_DEVICE,
    WritePath,
)
from repro.errors import ParameterError, SimulationError


@pytest.fixture
def path(eval_device):
    return WritePath(eval_device, AccessTransistor(r_on=3000.0))


class TestOperatingPoint:
    def test_divider_drops_voltage(self, path):
        v_mtj = path.mtj_voltage(1.2, MTJState.AP)
        assert 0 < v_mtj < 1.2

    def test_consistency_of_fixed_point(self, path, eval_device):
        v_cell = 1.2
        v_mtj = path.mtj_voltage(v_cell, MTJState.AP)
        r_mtj = eval_device.params.resistance.resistance(
            eval_device.params.ecd, "AP", v_mtj)
        expected = v_cell * r_mtj / (r_mtj + 3000.0)
        assert v_mtj == pytest.approx(expected, abs=1e-6)

    def test_p_state_drops_more(self, path):
        # RP < RAP: the access device eats a larger share in P state.
        v_ap = path.mtj_voltage(1.2, MTJState.AP)
        v_p = path.mtj_voltage(1.2, MTJState.P)
        assert v_p < v_ap

    def test_zero_access_resistance_limit(self, eval_device):
        ideal = WritePath(eval_device, AccessTransistor(r_on=1e-3))
        assert ideal.mtj_voltage(1.0, MTJState.AP) == pytest.approx(
            1.0, abs=1e-5)

    def test_current_continuity(self, path, eval_device):
        v_cell = 1.2
        i = path.write_current(v_cell, MTJState.AP)
        v_mtj = path.mtj_voltage(v_cell, MTJState.AP)
        assert i == pytest.approx((v_cell - v_mtj) / 3000.0, rel=1e-4)


class TestWriteTiming:
    def test_access_device_slows_write(self, path, eval_device):
        h = eval_device.intra_stray_field()
        tw_direct = eval_device.switching_time(1.1, h)
        tw_through = path.switching_time(1.1, h)
        assert tw_through > tw_direct

    def test_required_cell_voltage_roundtrip(self, path):
        v_cell = path.required_cell_voltage(0.9, MTJState.AP)
        assert path.mtj_voltage(v_cell, MTJState.AP) == pytest.approx(
            0.9, abs=1e-6)

    def test_unreachable_target(self, eval_device):
        starved = WritePath(eval_device, AccessTransistor(r_on=1e6))
        with pytest.raises(SimulationError):
            starved.required_cell_voltage(0.9, MTJState.AP, v_max=1.2)


class TestValidation:
    def test_bad_r_on(self):
        with pytest.raises(Exception):
            AccessTransistor(r_on=0.0)

    def test_bad_device(self):
        with pytest.raises(ParameterError):
            WritePath("device", AccessTransistor(r_on=1000.0))

    def test_bad_access(self, eval_device):
        with pytest.raises(ParameterError):
            WritePath(eval_device, 1000.0)
