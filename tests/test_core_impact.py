"""Tests for the Ic / tw / Delta impact analyses (Figs. 4c, 5, 6)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import IcAnalysis, RetentionAnalysis, SwitchingTimeAnalysis
from repro.device import MTJState
from repro.errors import ParameterError
from repro.units import celsius_to_kelvin, nm_to_m


@pytest.fixture
def ic_analysis(eval_device):
    return IcAnalysis(eval_device)


@pytest.fixture
def tw_analysis(eval_device):
    return SwitchingTimeAnalysis(eval_device)


@pytest.fixture
def retention(eval_device):
    return RetentionAnalysis(eval_device)


class TestStrayFieldCases:
    def test_ideal_zero(self, ic_analysis):
        assert ic_analysis.stray_field("ideal") == 0.0

    def test_intra_matches_device(self, ic_analysis, eval_device):
        assert ic_analysis.stray_field("intra") == pytest.approx(
            eval_device.intra_stray_field())

    def test_np_cases_bracket_intra(self, ic_analysis):
        pitch = nm_to_m(52.5)
        h_np0 = ic_analysis.stray_field("np0", pitch)
        h_np255 = ic_analysis.stray_field("np255", pitch)
        h_intra = ic_analysis.stray_field("intra")
        assert h_np0 < h_intra < h_np255

    def test_pattern_case_requires_pitch(self, ic_analysis):
        with pytest.raises(ParameterError):
            ic_analysis.stray_field("np0")

    def test_unknown_case(self, ic_analysis):
        with pytest.raises(ParameterError):
            ic_analysis.stray_field("np128")


class TestIcAnalysis:
    def test_anchors(self, ic_analysis):
        anchors = ic_analysis.anchors()
        assert anchors["ic0"] * 1e6 == pytest.approx(57.2, rel=1e-6)
        assert anchors["ic_ap_p_intra"] * 1e6 == pytest.approx(61.2,
                                                               abs=1.0)
        assert anchors["ic_p_ap_intra"] * 1e6 == pytest.approx(53.2,
                                                               abs=1.0)

    def test_ideal_flat_vs_pitch(self, ic_analysis):
        pitches = np.array([nm_to_m(p) for p in (52.5, 100.0, 200.0)])
        values = ic_analysis.ic_vs_pitch(pitches, "AP->P", "ideal")
        assert np.ptp(values) < 1e-12

    def test_np_spread_shrinks_with_pitch(self, ic_analysis):
        pitches = np.array([nm_to_m(p) for p in (52.5, 200.0)])
        np0 = ic_analysis.ic_vs_pitch(pitches, "AP->P", "np0")
        np255 = ic_analysis.ic_vs_pitch(pitches, "AP->P", "np255")
        assert (np0[0] - np255[0]) > 5 * (np0[1] - np255[1]) > 0

    def test_directions_mirror(self, ic_analysis):
        pitches = np.array([nm_to_m(70.0)])
        up = ic_analysis.ic_vs_pitch(pitches, "AP->P", "np0")[0]
        down = ic_analysis.ic_vs_pitch(pitches, "P->AP", "np0")[0]
        ic0 = ic_analysis.anchors()["ic0"]
        assert up + down == pytest.approx(2 * ic0, rel=1e-9)

    def test_table_complete(self, ic_analysis):
        pitches = np.array([nm_to_m(70.0), nm_to_m(120.0)])
        table = ic_analysis.table(pitches)
        assert len(table) == 8
        for values in table.values():
            assert values.shape == (2,)


class TestSwitchingTimeAnalysis:
    def test_family_keys(self, tw_analysis):
        voltages = np.linspace(0.8, 1.2, 5)
        family = tw_analysis.family(voltages, nm_to_m(70.0))
        assert set(family) == {"ideal", "intra", "np0", "np255"}

    def test_stray_slows_down(self, tw_analysis):
        voltages = np.array([0.9])
        pitch = nm_to_m(52.5)
        tw_ideal = tw_analysis.tw_vs_voltage(voltages, "ideal")[0]
        tw_np0 = tw_analysis.tw_vs_voltage(voltages, "np0", pitch)[0]
        assert tw_np0 > tw_ideal

    def test_penalty_positive_and_grows_at_small_pitch(self, tw_analysis):
        p_small = tw_analysis.pattern_penalty(0.85, nm_to_m(52.5))
        p_large = tw_analysis.pattern_penalty(0.85, nm_to_m(105.0))
        assert p_small > p_large > 0

    def test_below_threshold_infinite(self, tw_analysis):
        voltages = np.array([0.3])
        tw = tw_analysis.tw_vs_voltage(voltages, "intra")[0]
        assert math.isinf(tw)

    def test_p_to_ap_direction_supported(self, tw_analysis):
        voltages = np.array([0.9])
        tw = tw_analysis.tw_vs_voltage(
            voltages, "intra", initial_state=MTJState.P)[0]
        assert 0 < tw < 20e-9


class TestRetentionAnalysis:
    def test_family_structure(self, retention):
        temps = celsius_to_kelvin(np.array([0.0, 75.0, 150.0]))
        family = retention.family(temps, nm_to_m(70.0))
        assert "delta0" in family
        assert ("P", "np0") in family

    def test_worst_case_below_everything(self, retention):
        temps = celsius_to_kelvin(np.array([25.0]))
        pitch = nm_to_m(70.0)
        family = retention.family(temps, pitch)
        worst = retention.worst_case_vs_temperature(temps, pitch)
        for key, values in family.items():
            if key == "delta0":
                continue
            assert worst[0] <= values[0] + 1e-12

    def test_delta_monotone_in_temperature(self, retention):
        temps = celsius_to_kelvin(np.linspace(0.0, 150.0, 7))
        worst = retention.worst_case_vs_temperature(temps, nm_to_m(70.0))
        assert np.all(np.diff(worst) < 0)

    def test_margin_sign(self, retention):
        temp = celsius_to_kelvin(25.0)
        generous = retention.retention_margin(temp, nm_to_m(70.0),
                                              target_delta=20.0)
        strict = retention.retention_margin(temp, nm_to_m(70.0),
                                            target_delta=60.0)
        assert generous > 0 > strict
