"""Parity tests for the vectorized loop-field backend.

The batched ``LoopCollection.field`` must match the per-loop reference
path and the discrete Biot-Savart solver to tight tolerance, for generic
loop bags and for the stack-derived sources the coupling model uses.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.fields import (
    CurrentLoop,
    LoopCollection,
    layer_to_loops,
    loop_field_analytic,
    loop_field_analytic_many,
)
from repro.stack import build_reference_stack


@pytest.fixture(scope="module")
def random_collection():
    rng = np.random.default_rng(7)
    loops = [
        CurrentLoop(tuple(rng.uniform(-50e-9, 50e-9, 3)),
                    rng.uniform(5e-9, 30e-9),
                    rng.uniform(-2e-3, 2e-3))
        for _ in range(23)
    ]
    return LoopCollection(loops)


@pytest.fixture(scope="module")
def eval_points():
    rng = np.random.default_rng(11)
    pts = rng.uniform(-80e-9, 80e-9, size=(96, 3))
    # Include exactly-on-axis points of several member loops.
    pts[0] = (0.0, 0.0, 40e-9)
    pts[1] = (0.0, 0.0, -25e-9)
    return pts


class TestBatchedKernel:
    def test_matches_per_loop_kernel(self, random_collection,
                                     eval_points):
        col = random_collection
        batched = loop_field_analytic_many(
            col.currents, col.radii, col.centers, eval_points)
        reference = np.zeros_like(eval_points)
        for lp in col:
            reference += loop_field_analytic(
                lp.current, lp.radius,
                eval_points - np.asarray(lp.center))
        np.testing.assert_allclose(batched, reference, rtol=1e-12,
                                   atol=1e-9)

    def test_per_source_shape(self, random_collection, eval_points):
        col = random_collection
        per_source = loop_field_analytic_many(
            col.currents, col.radii, col.centers, eval_points,
            sum_sources=False)
        assert per_source.shape == (len(col), len(eval_points), 3)
        np.testing.assert_allclose(
            per_source.sum(axis=0), col.field(eval_points), rtol=1e-12,
            atol=1e-9)

    def test_empty_sources(self, eval_points):
        out = loop_field_analytic_many(
            np.zeros(0), np.zeros(0), np.zeros((0, 3)), eval_points)
        assert out.shape == eval_points.shape
        assert np.all(out == 0.0)

    def test_shape_validation(self, eval_points):
        with pytest.raises(ParameterError):
            loop_field_analytic_many([1e-3], [1e-9, 2e-9],
                                     [[0, 0, 0]], eval_points)
        with pytest.raises(ParameterError):
            loop_field_analytic_many([1e-3], [1e-9], [[0, 0]],
                                     eval_points)
        with pytest.raises(ParameterError):
            loop_field_analytic_many([1e-3], [-1e-9], [[0, 0, 0]],
                                     eval_points)


class TestCollectionParity:
    def test_field_matches_reference_path(self, random_collection,
                                          eval_points):
        np.testing.assert_allclose(
            random_collection.field(eval_points),
            random_collection.field_per_loop(eval_points),
            rtol=1e-12, atol=1e-9)

    def test_field_matches_biot_savart(self):
        # Stack-derived sources at a neighbor offset, evaluated at the
        # victim FL: exactly the coupling-kernel geometry.
        stack = build_reference_stack(55e-9)
        loops = []
        for layer in stack.fixed_layers():
            loops.extend(layer_to_loops(layer, stack.radius,
                                        center_xy=(90e-9, 0.0)))
        col = LoopCollection(loops)
        pts = np.array([[0.0, 0.0, 0.0], [10e-9, -5e-9, 2e-9]])
        np.testing.assert_allclose(
            col.field(pts),
            col.field_biot_savart(pts, n_segments=2000),
            rtol=5e-5, atol=1e-2)

    def test_single_point_shape(self, random_collection):
        out = random_collection.field(np.array([1e-9, 2e-9, 3e-9]))
        assert out.shape == (3,)

    def test_packed_views_consistent(self, random_collection):
        col = random_collection
        assert col.centers.shape == (len(col), 3)
        for i, lp in enumerate(col):
            assert col.radii[i] == lp.radius
            assert col.currents[i] == lp.current
            np.testing.assert_array_equal(col.centers[i], lp.center)

    def test_from_arrays_roundtrip(self, random_collection):
        col = random_collection
        rebuilt = LoopCollection.from_arrays(col.centers, col.radii,
                                             col.currents)
        pts = np.array([[5e-9, 5e-9, 5e-9]])
        np.testing.assert_allclose(rebuilt.field(pts), col.field(pts),
                                   rtol=1e-12)

    def test_from_arrays_validation(self):
        with pytest.raises(ParameterError):
            LoopCollection.from_arrays(np.zeros((2, 2)), np.ones(2),
                                       np.ones(2))
        with pytest.raises(ParameterError):
            LoopCollection.from_arrays(np.zeros((2, 3)), np.ones(3),
                                       np.ones(2))


class TestFieldGrid:
    def test_grid_shape_preserved(self, random_collection):
        pts = np.zeros((4, 5, 2, 3))
        pts[..., 0] = np.linspace(-40e-9, 40e-9, 4)[:, None, None]
        pts[..., 2] = 10e-9
        out = random_collection.field_grid(pts)
        assert out.shape == pts.shape
        flat = random_collection.field(pts.reshape(-1, 3))
        np.testing.assert_allclose(out.reshape(-1, 3), flat, rtol=1e-12)

    def test_grid_single_point(self, random_collection):
        out = random_collection.field_grid(np.array([0.0, 0.0, 5e-9]))
        assert out.shape == (3,)

    def test_grid_rejects_bad_last_axis(self, random_collection):
        with pytest.raises(ParameterError):
            random_collection.field_grid(np.zeros((4, 2)))
