"""Tests for VSM emulation and process-variation sampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.characterization import (
    ProcessVariation,
    measure_blanket_moments,
    sample_device_parameters,
)
from repro.device import PAPER_EVAL_DEVICE
from repro.errors import ParameterError


class TestVSM:
    def test_one_result_per_magnetic_layer(self, stack35):
        results = measure_blanket_moments(stack35, rng=1)
        assert len(results) == 3
        roles = [r.layer_role for r in results]
        assert roles == ["hard", "reference", "free"]

    def test_values_near_nominal(self, stack35):
        results = measure_blanket_moments(stack35, rng=2, noise=0.02)
        for r in results:
            assert abs(r.relative_error) < 0.1
            assert np.sign(r.moment_per_area) == np.sign(r.nominal)

    def test_zero_noise_exact(self, stack35):
        results = measure_blanket_moments(stack35, rng=3, noise=0.0)
        for r in results:
            assert r.moment_per_area == pytest.approx(r.nominal)

    def test_signs_follow_saf(self, stack35):
        results = {r.layer_role: r for r in
                   measure_blanket_moments(stack35, rng=4)}
        assert results["reference"].nominal > 0
        assert results["hard"].nominal < 0

    def test_rejects_non_stack(self):
        with pytest.raises(ParameterError):
            measure_blanket_moments("stack")


class TestProcessVariation:
    def test_sample_count_and_type(self):
        samples = sample_device_parameters(PAPER_EVAL_DEVICE, 20, rng=5)
        assert len(samples) == 20
        assert all(s.ecd > 0 for s in samples)

    def test_spread_matches_sigma(self):
        variation = ProcessVariation(sigma_ecd=0.05, sigma_hk=0.0,
                                     sigma_delta0=0.0)
        samples = sample_device_parameters(
            PAPER_EVAL_DEVICE, 600, variation=variation, rng=6,
            scale_delta0_with_area=False)
        ecds = np.array([s.ecd for s in samples])
        rel_std = np.std(ecds) / PAPER_EVAL_DEVICE.ecd
        assert rel_std == pytest.approx(0.05, rel=0.15)

    def test_delta0_scales_with_area(self):
        variation = ProcessVariation(sigma_ecd=0.10, sigma_hk=0.0,
                                     sigma_delta0=0.0)
        samples = sample_device_parameters(
            PAPER_EVAL_DEVICE, 300, variation=variation, rng=7)
        ratio = np.array([
            s.delta0 / PAPER_EVAL_DEVICE.delta0 for s in samples])
        area_ratio = np.array([
            (s.ecd / PAPER_EVAL_DEVICE.ecd) ** 2 for s in samples])
        np.testing.assert_allclose(ratio, area_ratio, rtol=1e-9)

    def test_deterministic_with_seed(self):
        a = sample_device_parameters(PAPER_EVAL_DEVICE, 5, rng=11)
        b = sample_device_parameters(PAPER_EVAL_DEVICE, 5, rng=11)
        assert [s.ecd for s in a] == [s.ecd for s in b]

    def test_sigma_validation(self):
        with pytest.raises(ParameterError):
            ProcessVariation(sigma_ecd=1.5)

    def test_rejects_non_parameters(self):
        with pytest.raises(ParameterError):
            sample_device_parameters("base", 5)
