"""Tests for the markdown reproduction report generator."""

from __future__ import annotations

import os

import pytest

from repro.experiments.base import Comparison, ExperimentResult
from repro.experiments.report import build_report, write_report


def make_results():
    result = ExperimentResult(
        experiment_id="figY",
        title="synthetic experiment",
        headers=["x", "y"],
        rows=[(i, float(i) * 2) for i in range(15)],
        comparisons=[
            Comparison("anchor", 1.0, 1.01, True, "close"),
            Comparison("shape", None, 1.0, True, ""),
        ],
    )
    return {"figY": result}


class TestBuildReport:
    def test_structure(self):
        text = build_report(results=make_results())
        assert text.startswith("# Reproduction report")
        assert "## Scoreboard" in text
        assert "## figY — synthetic experiment" in text
        assert "Paper vs measured" in text

    def test_scoreboard_counts(self):
        text = build_report(results=make_results())
        assert "**1/1 experiments satisfied all reproduction "
        assert "1/1 experiments" in text
        assert "| figY |" in text

    def test_row_truncation(self):
        text = build_report(results=make_results(), max_rows=5)
        assert "10 more rows omitted" in text

    def test_failed_criteria_marked(self):
        results = make_results()
        results["figY"].comparisons.append(
            Comparison("broken", 2.0, 9.0, False, ""))
        text = build_report(results=results)
        assert "DEVIATES" in text
        assert "0/1 experiments" in text

    def test_markdown_tables_well_formed(self):
        text = build_report(results=make_results())
        table_lines = [line for line in text.splitlines()
                       if line.startswith("|")]
        assert table_lines
        for line in table_lines:
            assert line.endswith("|")


class TestWriteReport:
    def test_writes_file(self, tmp_path):
        path = str(tmp_path / "sub" / "report.md")
        out = write_report(path, results=make_results())
        assert os.path.exists(out)
        with open(out) as handle:
            assert "# Reproduction report" in handle.read()
