"""Tests for the energy barrier / thermal stability formulas (Eq. 5)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.constants import BOLTZMANN, MU0
from repro.device import delta_factor, delta_with_stray, energy_barrier
from repro.device.energy import activation_volume, state_sign
from repro.errors import ParameterError

H_RATIOS = st.floats(min_value=-0.5, max_value=0.5)


class TestEnergyBarrier:
    def test_formula(self):
        ms, hk, vol = 1.1e6, 3.7e5, 7.3e-25
        assert energy_barrier(ms, hk, vol) == pytest.approx(
            0.5 * MU0 * ms * hk * vol)

    def test_delta_factor(self):
        ms, hk, vol, temp = 1.1e6, 3.7e5, 7.3e-25, 298.15
        expected = energy_barrier(ms, hk, vol) / (BOLTZMANN * temp)
        assert delta_factor(ms, hk, vol, temp) == pytest.approx(expected)

    def test_delta_scales_inverse_temperature(self):
        base = delta_factor(1.1e6, 3.7e5, 7.3e-25, 300.0)
        assert delta_factor(1.1e6, 3.7e5, 7.3e-25, 600.0) == (
            pytest.approx(base / 2))


class TestStateSign:
    def test_signs(self):
        assert state_sign("P") == +1.0
        assert state_sign("AP") == -1.0

    def test_bad_state(self):
        with pytest.raises(ParameterError):
            state_sign("both")


class TestDeltaWithStray:
    def test_no_field_recovers_delta0(self):
        assert delta_with_stray(45.5, 0.0, "P") == pytest.approx(45.5)
        assert delta_with_stray(45.5, 0.0, "AP") == pytest.approx(45.5)

    def test_negative_field_penalizes_p(self):
        # Negative h (anti-parallel to RL, the measured situation):
        # Delta_P shrinks, Delta_AP grows — paper Fig. 6a ordering.
        h = -0.07
        assert delta_with_stray(45.5, h, "P") < 45.5
        assert delta_with_stray(45.5, h, "AP") > 45.5

    def test_quadratic_law(self):
        h = -0.07
        assert delta_with_stray(45.5, h, "P") == pytest.approx(
            45.5 * (1 - 0.07) ** 2)
        assert delta_with_stray(45.5, h, "AP") == pytest.approx(
            45.5 * (1 + 0.07) ** 2)

    @given(H_RATIOS)
    def test_product_of_states_exceeds_square(self, h):
        # (1+h)^2 (1-h)^2 = (1-h^2)^2 <= 1: the stray field always reduces
        # the geometric mean of the two barriers.
        dp = delta_with_stray(45.5, h, "P")
        dap = delta_with_stray(45.5, h, "AP")
        assert dp * dap <= 45.5 ** 2 + 1e-9

    @given(H_RATIOS)
    def test_symmetry_under_field_reversal(self, h):
        assert delta_with_stray(45.5, h, "P") == pytest.approx(
            delta_with_stray(45.5, -h, "AP"))

    def test_field_at_hk_rejected(self):
        with pytest.raises(ParameterError):
            delta_with_stray(45.5, 1.0, "P")


class TestActivationVolume:
    def test_scale(self):
        assert activation_volume(2e-24, 0.38) == pytest.approx(0.76e-24)

    def test_rejects_scale_above_one(self):
        with pytest.raises(ParameterError):
            activation_volume(2e-24, 1.2)
