"""Tests for the temperature scaling of Ms/Hk/Delta."""

from __future__ import annotations

import pytest

from repro.device import ThermalModel
from repro.materials import COFEB_FREE
from repro.units import celsius_to_kelvin


@pytest.fixture
def model():
    return ThermalModel(material=COFEB_FREE)


class TestRatios:
    def test_unity_at_reference(self, model):
        t_ref = model.reference_temperature
        assert model.ms_ratio(t_ref) == pytest.approx(1.0)
        assert model.hk_ratio(t_ref) == pytest.approx(1.0)
        assert model.delta_ratio(t_ref) == pytest.approx(1.0)

    def test_all_decrease_with_temperature(self, model):
        hot = celsius_to_kelvin(150.0)
        assert model.ms_ratio(hot) < 1.0
        assert model.hk_ratio(hot) < 1.0
        assert model.delta_ratio(hot) < model.ms_ratio(hot)

    def test_delta_combines_three_effects(self, model):
        t = celsius_to_kelvin(100.0)
        expected = (model.ms_ratio(t) * model.hk_ratio(t)
                    * model.reference_temperature / t)
        assert model.delta_ratio(t) == pytest.approx(expected)

    def test_hk_exponent(self):
        strong = ThermalModel(material=COFEB_FREE, hk_exponent=2.0)
        weak = ThermalModel(material=COFEB_FREE, hk_exponent=0.5)
        t = celsius_to_kelvin(150.0)
        assert strong.hk_ratio(t) < weak.hk_ratio(t)


class TestPaperSlope:
    def test_delta0_at_150c(self, model):
        """The paper's Fig. 6: Delta0 = 45.5 at 25 C drops to ~27 at 150 C."""
        value = model.delta0_at(45.5, celsius_to_kelvin(150.0))
        assert 24.0 < value < 30.0

    def test_delta0_at_0c(self, model):
        value = model.delta0_at(45.5, celsius_to_kelvin(0.0))
        assert 47.0 < value < 52.0


class TestScaledValues:
    def test_ms_at(self, model):
        t = celsius_to_kelvin(100.0)
        assert model.ms_at(1.1e6, t) == pytest.approx(
            1.1e6 * model.ms_ratio(t))

    def test_hk_at(self, model):
        t = celsius_to_kelvin(100.0)
        assert model.hk_at(3.7e5, t) == pytest.approx(
            3.7e5 * model.hk_ratio(t))
