"""The fault-injection harness itself, plus breaker/retry pacing.

The harness must be deterministic to be useful: a chaos failure
reproduces from ``FaultPlan(seed, kind)`` alone, so these tests pin
the plan derivation, the scheduled-failure shims, and the seeded
backoff schedules byte-for-byte.
"""

import errno

import pytest

from repro.errors import ParameterError
from repro.resilience import (
    FAULT_KINDS,
    CircuitBreaker,
    FaultClock,
    FaultPlan,
    FaultyFileSystem,
    RetryPolicy,
    WorkerFaults,
    WorkerKilled,
    call_with_retry,
)


class TestFaultPlan:
    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_same_seed_same_plan(self, kind):
        a, b = FaultPlan(11, kind), FaultPlan(11, kind)
        assert a.describe() == b.describe()
        assert (a.target_chunk, a.corrupt_offset, a.corrupt_flip,
                a.replace_ordinal) == (b.target_chunk,
                                       b.corrupt_offset,
                                       b.corrupt_flip,
                                       b.replace_ordinal)

    def test_seeds_decorrelate_targets(self):
        targets = {FaultPlan(seed, "worker-kill", n_chunks=16)
                   .target_chunk for seed in range(8)}
        assert len(targets) > 1

    def test_unknown_kind_rejected(self):
        with pytest.raises(ParameterError, match="unknown fault kind"):
            FaultPlan(0, "meteor-strike")

    def test_plan_builds_matching_artifacts(self):
        assert FaultPlan(0, "worker-kill").worker_faults() \
            .kill_at_chunk is not None
        poison = FaultPlan(0, "poison-chunk").worker_faults()
        assert poison.fail_at_chunk is not None and not poison.fail_once
        assert FaultPlan(0, "stall-heartbeat").worker_faults() \
            .stall_heartbeat_at_chunk is not None
        assert FaultPlan(0, "corrupt-checkpoint").worker_faults() is None
        fs = FaultPlan(0, "eio-on-rename").filesystem()
        assert isinstance(fs, FaultyFileSystem)
        assert fs.fail_replace_at


class TestFaultyFileSystem:
    def test_fails_scheduled_replace_ordinal(self, tmp_path):
        fs = FaultyFileSystem(fail_replace_at={2})
        src, dst = str(tmp_path / "src"), str(tmp_path / "dst")
        for _ in range(2):
            fs.write_bytes(src, b"payload")
        fs.replace(src, dst)                       # ordinal 1: fine
        fs.write_bytes(src, b"payload")
        with pytest.raises(OSError) as excinfo:
            fs.replace(src, dst)                   # ordinal 2: EIO
        assert excinfo.value.errno == errno.EIO
        assert fs.injected == 1
        fs.replace(src, dst)                       # ordinal 3: fine

    def test_matching_filter_scopes_the_ordinals(self, tmp_path):
        fs = FaultyFileSystem(fail_write_at={1},
                              fail_write_matching=".ckpt")
        fs.write_bytes(str(tmp_path / "other.txt"), b"x")  # not counted
        with pytest.raises(OSError):
            fs.write_bytes(str(tmp_path / "run.ckpt"), b"x")
        assert fs.write_calls == 1


class TestWorkerFaults:
    def test_kill_once_arms_a_single_time(self):
        faults = WorkerFaults(kill_at_chunk=2)
        faults.on_chunk("w1", 0)
        with pytest.raises(WorkerKilled) as excinfo:
            faults.on_chunk("w1", 2)
        assert excinfo.value.chunk == 2
        faults.on_chunk("w2", 2)       # retry survives
        assert faults.kills == 1

    def test_persistent_failure_ships_ordinary_errors(self):
        faults = WorkerFaults(fail_at_chunk=1, fail_once=False)
        for _ in range(3):
            with pytest.raises(RuntimeError, match="injected"):
                faults.on_chunk("w1", 1)
        assert faults.failures == 3

    def test_worker_killed_escapes_exception_absorbers(self):
        # The load-bearing type property: a plain `except Exception`
        # (the worker's error-payload absorber) must NOT catch a kill.
        assert not issubclass(WorkerKilled, Exception)
        assert issubclass(WorkerKilled, BaseException)

    def test_stall_reports_only_the_target_chunk(self):
        faults = WorkerFaults(stall_heartbeat_at_chunk=3)
        assert not faults.heartbeat_stalled(0)
        assert faults.heartbeat_stalled(3)


class TestFaultClock:
    def test_sleep_advances_instead_of_blocking(self):
        clock = FaultClock(start=100.0)
        clock.sleep(5.0)
        clock.advance(2.5)
        assert clock.monotonic() == 107.5
        assert clock.time() == 107.5
        assert clock.sleeps == [5.0]


class TestCircuitBreaker:
    def test_full_open_halfopen_closed_cycle(self):
        clock = FaultClock()
        breaker = CircuitBreaker(failure_threshold=2,
                                 reset_timeout=10.0, clock=clock)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()            # rejected while open
        assert breaker.stats()["rejected"] == 1
        clock.advance(10.0)
        assert breaker.allow()                # the half-open probe
        assert breaker.state == "half-open"
        breaker.record_success()
        assert breaker.state == "closed"

    def test_failed_probe_reopens_for_a_full_window(self):
        clock = FaultClock()
        breaker = CircuitBreaker(failure_threshold=1,
                                 reset_timeout=10.0, clock=clock)
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()              # probe failed
        assert breaker.state == "open"
        clock.advance(5.0)
        assert not breaker.allow()            # window restarted

    def test_success_resets_the_failure_count(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"


class TestRetryPolicy:
    def test_schedule_is_seeded_and_capped(self):
        a = RetryPolicy(base=1.0, factor=2.0, cap=5.0, jitter=0.25,
                        seed=3)
        b = RetryPolicy(base=1.0, factor=2.0, cap=5.0, jitter=0.25,
                        seed=3)
        schedule = [a.delay(k) for k in range(1, 6)]
        assert schedule == [b.delay(k) for k in range(1, 6)]
        assert all(d <= 5.0 * 1.25 for d in schedule)
        # Exponential growth up to the cap, jitter notwithstanding.
        assert schedule[2] > schedule[0]

    def test_zero_jitter_is_pure_exponential(self):
        policy = RetryPolicy(base=0.5, factor=2.0, cap=30.0, jitter=0.0)
        assert [policy.delay(k) for k in (1, 2, 3)] == [0.5, 1.0, 2.0]

    def test_exhaustion_budget(self):
        policy = RetryPolicy(max_attempts=2)
        assert not policy.exhausted(1)
        assert policy.exhausted(2)
        assert not RetryPolicy().exhausted(10**6)

    def test_call_with_retry_recovers_then_propagates(self):
        clock = FaultClock()
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise OSError("transient")
            return "ok"

        policy = RetryPolicy(base=0.1, jitter=0.0, max_attempts=5)
        assert call_with_retry(flaky, policy, clock=clock,
                               retry_on=OSError) == "ok"
        assert len(attempts) == 3
        assert clock.sleeps == [0.1, 0.2]

        policy = RetryPolicy(base=0.1, jitter=0.0, max_attempts=2)
        with pytest.raises(OSError):
            call_with_retry(lambda: (_ for _ in ()).throw(
                OSError("always")), policy, clock=clock,
                retry_on=OSError)
