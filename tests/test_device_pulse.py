"""Tests for pulse waveforms and shaped-pulse switching."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import WriteErrorModel
from repro.device import (
    TrapezoidalPulse,
    equivalent_rectangular_width,
    rectangular,
    shaped_pulse_wer,
)
from repro.device.pulse import rate_integral
from repro.errors import ParameterError


@pytest.fixture
def hz_intra(eval_device):
    return eval_device.intra_stray_field()


class TestWaveform:
    def test_rectangular_is_flat(self):
        pulse = rectangular(1.0, 10e-9)
        times, volts = pulse.sample(50)
        np.testing.assert_allclose(volts, 1.0)
        assert pulse.plateau == pytest.approx(10e-9)

    def test_trapezoid_edges(self):
        pulse = TrapezoidalPulse(amplitude=1.0, width=10e-9,
                                 rise_time=2e-9, fall_time=2e-9)
        assert pulse.voltage(0.0) == pytest.approx(0.0)
        assert pulse.voltage(1e-9) == pytest.approx(0.5)
        assert pulse.voltage(5e-9) == pytest.approx(1.0)
        assert pulse.voltage(9e-9) == pytest.approx(0.5)
        assert pulse.voltage(10e-9) == pytest.approx(0.0, abs=1e-12)

    def test_voltage_outside_pulse_zero(self):
        pulse = rectangular(1.0, 10e-9)
        assert pulse.voltage(-1e-9) == 0.0
        assert pulse.voltage(11e-9) == 0.0

    def test_edges_exceeding_width_rejected(self):
        with pytest.raises(ParameterError):
            TrapezoidalPulse(amplitude=1.0, width=3e-9, rise_time=2e-9,
                             fall_time=2e-9)

    def test_plateau(self):
        pulse = TrapezoidalPulse(amplitude=1.0, width=10e-9,
                                 rise_time=1e-9, fall_time=3e-9)
        assert pulse.plateau == pytest.approx(6e-9)


class TestRateIntegral:
    def test_rectangular_integral_linear_in_width(self, eval_device,
                                                  hz_intra):
        g1 = rate_integral(rectangular(0.95, 10e-9), eval_device,
                           hz_intra)
        g2 = rate_integral(rectangular(0.95, 20e-9), eval_device,
                           hz_intra)
        assert g2 == pytest.approx(2 * g1, rel=0.01)

    def test_edges_reduce_integral(self, eval_device, hz_intra):
        rect = rate_integral(rectangular(0.95, 20e-9), eval_device,
                             hz_intra)
        trap = rate_integral(
            TrapezoidalPulse(amplitude=0.95, width=20e-9,
                             rise_time=5e-9, fall_time=5e-9),
            eval_device, hz_intra)
        assert trap < rect

    def test_subthreshold_pulse_zero_integral(self, eval_device,
                                              hz_intra):
        g = rate_integral(rectangular(0.1, 20e-9), eval_device,
                          hz_intra)
        assert g == 0.0


class TestEquivalentWidth:
    def test_rectangular_maps_to_itself(self, eval_device, hz_intra):
        width = equivalent_rectangular_width(
            rectangular(0.95, 15e-9), eval_device, hz_intra)
        assert width == pytest.approx(15e-9, rel=0.01)

    def test_trapezoid_shorter_than_nominal(self, eval_device,
                                            hz_intra):
        pulse = TrapezoidalPulse(amplitude=0.95, width=15e-9,
                                 rise_time=3e-9, fall_time=3e-9)
        width = equivalent_rectangular_width(pulse, eval_device,
                                             hz_intra)
        assert pulse.plateau < width < pulse.width

    def test_subthreshold_plateau_rejected(self, eval_device,
                                           hz_intra):
        with pytest.raises(ParameterError):
            equivalent_rectangular_width(rectangular(0.1, 15e-9),
                                         eval_device, hz_intra)


class TestShapedPulseWer:
    def test_matches_closed_form_for_rectangular(self, eval_device,
                                                 hz_intra):
        model = WriteErrorModel(eval_device)
        width = 20e-9
        expected = model.wer(width, vp=0.95, hz_stray=hz_intra)
        shaped = shaped_pulse_wer(rectangular(0.95, width), eval_device,
                                  hz_intra)
        assert shaped == pytest.approx(expected, rel=0.02)

    def test_slow_edges_raise_wer(self, eval_device, hz_intra):
        crisp = shaped_pulse_wer(rectangular(0.95, 20e-9), eval_device,
                                 hz_intra)
        sloppy = shaped_pulse_wer(
            TrapezoidalPulse(amplitude=0.95, width=20e-9,
                             rise_time=6e-9, fall_time=6e-9),
            eval_device, hz_intra)
        assert sloppy > crisp

    def test_shaped_equals_equivalent_rectangular(self, eval_device,
                                                  hz_intra):
        """A shaped pulse has the WER of the rectangular pulse with its
        equivalent width — the rate-integral equivalence, exactly.

        Note the edges are worth *less* than half their duration: the
        voltage spends part of each edge below the switching threshold
        where the growth rate is zero.
        """
        sloppy = TrapezoidalPulse(amplitude=0.95, width=26e-9,
                                  rise_time=6e-9, fall_time=6e-9)
        eq_width = equivalent_rectangular_width(sloppy, eval_device,
                                                hz_intra)
        assert eq_width < sloppy.width - 6e-9  # edges cost > half.
        wer_sloppy = shaped_pulse_wer(sloppy, eval_device, hz_intra)
        wer_eq = shaped_pulse_wer(rectangular(0.95, eq_width),
                                  eval_device, hz_intra)
        assert wer_sloppy == pytest.approx(wer_eq, rel=0.05)
