"""Tests for the inter-cell coupling model (paper Section IV-B anchors)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arrays import InterCellCoupling, NeighborhoodPattern
from repro.errors import ParameterError
from repro.stack import build_reference_stack
from repro.units import am_to_oe

NP8_INTS = st.integers(min_value=0, max_value=255)


@pytest.fixture(scope="module")
def coupling55():
    # The paper's Fig. 4a geometry: eCD = 55 nm, pitch = 90 nm.
    return InterCellCoupling(build_reference_stack(55e-9), 90e-9)


class TestKernels:
    def test_direct_stronger_than_diagonal(self, coupling55):
        k = coupling55.kernels()
        assert abs(k.fl_direct) > abs(k.fl_diagonal)
        assert abs(k.fixed_direct) > abs(k.fixed_diagonal)

    def test_fl_kernel_negative_for_p_neighbor(self, coupling55):
        # A P-state neighbor (moment +z) produces a -z field at the victim
        # (equatorial dipole field opposes the moment).
        k = coupling55.kernels()
        assert k.fl_direct < 0
        assert k.fl_diagonal < 0

    def test_fixed_kernel_positive(self, coupling55):
        # The fixed SAF has net -z moment (HL dominant) -> +z field at the
        # victim.
        k = coupling55.kernels()
        assert k.fixed_direct > 0

    def test_four_direct_neighbors_equal(self, coupling55):
        values = {
            round(coupling55._kernel(pos, "fl"), 3)
            for pos in coupling55.neighborhood.aggressor_positions()[:4]
        }
        assert len(values) == 1

    def test_four_diagonal_neighbors_equal(self, coupling55):
        values = {
            round(coupling55._kernel(pos, "fixed"), 3)
            for pos in coupling55.neighborhood.aggressor_positions()[4:]
        }
        assert len(values) == 1

    def test_kernels_memoized_per_instance(self, coupling55):
        assert coupling55.kernels() is coupling55.kernels()

    def test_off_axis_evaluation_point_rejected(self):
        # The symmetry reduction (4 equal direct, 4 equal diagonal
        # kernels) only holds on the victim axis; off-axis sampling
        # must fail loudly instead of returning wrong fields.
        stack = build_reference_stack(55e-9)
        with pytest.raises(ParameterError):
            InterCellCoupling(stack, 90e-9,
                              evaluation_point=(10e-9, 0.0, 0.0))
        with pytest.raises(ParameterError):
            InterCellCoupling(stack, 90e-9,
                              evaluation_point=(0.0, -5e-9, 0.0))
        # On-axis but above the FL center stays legal (z breaks no
        # lateral symmetry).
        InterCellCoupling(stack, 90e-9,
                          evaluation_point=(0.0, 0.0, 1e-9)).kernels()


class TestPaperAnchors:
    def test_extremes(self, coupling55):
        lo, hi = coupling55.extremes()
        assert am_to_oe(lo) == pytest.approx(-16.0, abs=8.0)
        assert am_to_oe(hi) == pytest.approx(64.0, abs=8.0)

    def test_steps(self, coupling55):
        k = coupling55.kernels()
        assert am_to_oe(2 * abs(k.fl_direct)) == pytest.approx(15.0,
                                                               abs=3.0)
        assert am_to_oe(2 * abs(k.fl_diagonal)) == pytest.approx(5.0,
                                                                 abs=2.0)

    def test_variation(self, coupling55):
        assert am_to_oe(coupling55.max_variation()) == pytest.approx(
            80.0, abs=10.0)

    def test_min_at_np0_max_at_np255(self, coupling55):
        values = coupling55.hz_inter_all()
        assert int(np.argmin(values)) == 0
        assert int(np.argmax(values)) == 255


class TestPatternAlgebra:
    @settings(max_examples=40, deadline=None)
    @given(NP8_INTS)
    def test_symmetry_path_equals_per_position_sum(self, value):
        # hz_inter is symmetry-reduced; check it against the explicit
        # 8-position kernel sum it replaced.
        coupling = InterCellCoupling(build_reference_stack(55e-9), 90e-9)
        pattern = NeighborhoodPattern.from_int(value)
        reference = sum(
            coupling._kernel(pos, "fixed") + sign * coupling._kernel(
                pos, "fl")
            for pos, sign in zip(
                coupling.neighborhood.aggressor_positions(),
                pattern.signs()))
        assert coupling.hz_inter(pattern) == pytest.approx(reference,
                                                           rel=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(NP8_INTS)
    def test_depends_only_on_counts(self, value):
        coupling = InterCellCoupling(build_reference_stack(55e-9), 90e-9)
        pattern = NeighborhoodPattern.from_int(value)
        table = coupling.class_table()
        assert coupling.hz_inter_fast(pattern) == pytest.approx(
            table[pattern.class_key], rel=1e-9)

    def test_all_256_consistent_with_classes(self, coupling55):
        values = coupling55.hz_inter_all()
        table = coupling55.class_table()
        for v in (0, 15, 240, 255, 0b10101010):
            pattern = NeighborhoodPattern.from_int(v)
            assert values[v] == pytest.approx(table[pattern.class_key])

    def test_complement_symmetry(self, coupling55):
        # Flipping every neighbor mirrors the FL term around the fixed
        # baseline.
        k = coupling55.kernels()
        base = k.pattern_independent
        for v in (0, 37, 129):
            p = NeighborhoodPattern.from_int(v)
            a = coupling55.hz_inter_fast(p)
            b = coupling55.hz_inter_fast(p.inverted())
            assert a + b == pytest.approx(2 * base, rel=1e-9)


class TestPitchScaling:
    def test_variation_decreases_with_pitch(self):
        stack = build_reference_stack(35e-9)
        variations = [
            InterCellCoupling(stack, p).max_variation()
            for p in (52.5e-9, 70e-9, 105e-9, 200e-9)
        ]
        assert all(a > b for a, b in zip(variations, variations[1:]))

    def test_far_pitch_negligible(self):
        stack = build_reference_stack(20e-9)
        coupling = InterCellCoupling(stack, 200e-9)
        assert am_to_oe(coupling.max_variation()) < 3.0

    def test_kernel_store_reused(self, coupling55):
        from repro.arrays import get_kernel_store
        store = get_kernel_store()
        coupling55.kernels()
        n_before = len(store)
        coupling55.hz_inter_all()
        coupling55.class_table()
        # Same geometry -> every further lookup hits the shared store.
        assert len(store) == n_before
        InterCellCoupling(build_reference_stack(55e-9), 90e-9).kernels()
        assert len(store) == n_before

    def test_validation(self):
        with pytest.raises(ParameterError):
            InterCellCoupling("not a stack", 90e-9)
        with pytest.raises(ParameterError):
            InterCellCoupling(build_reference_stack(55e-9), -1e-9)
