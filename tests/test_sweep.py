"""Tests for the generic sweep engine (spec, runner, result).

The determinism tests are the acceptance criterion of the subsystem:
parallel and serial executors must produce identical results for the
same spec and seeds, including for the seeded memsys sweep and the
figure runner.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.sweep import (
    EXECUTORS,
    SweepResult,
    SweepRunner,
    SweepSpec,
    executor_for_jobs,
    run_sweep,
)
from repro.validation import require_positive


class TestSweepSpec:
    def test_product_order_first_axis_slowest(self):
        spec = SweepSpec.product(a=(1, 2), b=(10, 20, 30))
        assert len(spec) == 6
        assert spec.shape == (2, 3)
        assert spec.point(0) == {"a": 1, "b": 10}
        assert spec.point(3) == {"a": 2, "b": 10}

    def test_zipped_pairs_elementwise(self):
        spec = SweepSpec.zipped(x=(1, 2, 3), label=("a", "b", "c"))
        assert len(spec) == 3
        assert spec.shape == (3,)
        assert spec.point(1) == {"x": 2, "label": "b"}

    def test_zipped_rejects_unequal_lengths(self):
        with pytest.raises(ParameterError):
            SweepSpec.zipped(x=(1, 2), y=(1,))

    def test_compose_product(self):
        grid = SweepSpec.product(a=(1, 2)) * SweepSpec.zipped(
            b=(3, 4), c=("p", "q"))
        assert len(grid) == 4
        assert grid.shape == (2, 2)
        assert grid.point(1) == {"a": 1, "b": 4, "c": "q"}
        assert grid.names == ("a", "b", "c")

    def test_compose_rejects_shared_axes(self):
        with pytest.raises(ParameterError):
            SweepSpec.product(a=(1,)) * SweepSpec.product(a=(2,))

    def test_empty_axis_rejected(self):
        with pytest.raises(ParameterError):
            SweepSpec.product(a=())
        with pytest.raises(ParameterError):
            SweepSpec.product()

    def test_points_are_copies(self):
        spec = SweepSpec.product(a=(1,))
        spec.points()[0]["a"] = 99
        assert spec.point(0) == {"a": 1}


class TestSweepResult:
    def test_values_array_reshapes_to_grid(self):
        spec = SweepSpec.product(a=(1, 2, 3), b=(10, 20))
        result = run_sweep(require_positive_product, spec)
        grid = result.values_array()
        assert grid.shape == (3, 2)
        assert grid[2, 1] == 60

    def test_tuple_values_get_trailing_axis(self):
        spec = SweepSpec.product(a=(1.0, 2.0))
        result = SweepResult(spec=spec, values=[(1.0, 2.0), (3.0, 4.0)])
        assert result.values_array(dtype=float).shape == (2, 2)

    def test_to_rows(self):
        spec = SweepSpec.product(a=(1, 2), b=(5,))
        result = run_sweep(require_positive_product, spec)
        headers, rows = result.to_rows(value_columns=["prod"])
        assert headers == ["a", "b", "prod"]
        assert rows == [(1, 5, 5), (2, 5, 10)]

    def test_value_at(self):
        spec = SweepSpec.product(a=(1, 2), b=(5, 7))
        result = run_sweep(require_positive_product, spec)
        assert result.value_at(a=2, b=7) == 14
        with pytest.raises(ParameterError):
            result.value_at(a=99)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ParameterError):
            SweepResult(spec=SweepSpec.product(a=(1, 2)), values=[1])


def require_positive_product(a, b):
    """Module-level picklable point function: a * b."""
    require_positive(a, "a")
    require_positive(b, "b")
    return a * b


class TestSweepRunner:
    def test_rejects_unknown_executor(self):
        with pytest.raises(ParameterError):
            SweepRunner(require_positive_product, executor="threads")

    def test_rejects_non_callable(self):
        with pytest.raises(ParameterError):
            SweepRunner(42)

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_all_executors_agree(self, executor):
        spec = SweepSpec.product(a=(1, 2, 3, 4, 5), b=(2, 3))
        result = run_sweep(require_positive_product, spec,
                           executor=executor, jobs=2, chunk_size=3)
        assert result.values == [a * b for a in (1, 2, 3, 4, 5)
                                 for b in (2, 3)]
        assert result.executor == executor

    def test_executor_for_jobs(self):
        assert executor_for_jobs(None) == "serial"
        assert executor_for_jobs(1) == "serial"
        assert executor_for_jobs(4) == "process"
        with pytest.raises(ParameterError):
            executor_for_jobs(0)

    def test_executor_for_jobs_small_grid_prefers_thread(self):
        from repro.sweep import SMALL_SWEEP_POINTS
        # Tiny field-bound grids: process spawn cost dominates, so the
        # implicit parallel pick is the thread executor.
        assert executor_for_jobs(4, n_points=SMALL_SWEEP_POINTS) == \
            "thread"
        assert executor_for_jobs(
            4, n_points=SMALL_SWEEP_POINTS + 1) == "process"
        # An explicit choice (or env override) beats the heuristic.
        assert executor_for_jobs(4, parallel="process",
                                 n_points=4) == "process"
        # Serial stays serial regardless of size.
        assert executor_for_jobs(1, n_points=4) == "serial"
        with pytest.raises(ParameterError):
            executor_for_jobs(4, n_points=-1)

    def test_executor_for_jobs_env_beats_size_heuristic(self,
                                                        monkeypatch):
        from repro.sweep import SWEEP_EXECUTOR_ENV
        monkeypatch.setenv(SWEEP_EXECUTOR_ENV, "chunked")
        assert executor_for_jobs(4, n_points=4) == "chunked"

    def test_executor_for_jobs_thread_parallel(self):
        assert executor_for_jobs(4, parallel="thread") == "thread"
        assert executor_for_jobs(1, parallel="thread") == "serial"
        with pytest.raises(ParameterError):
            executor_for_jobs(4, parallel="greenlet")

    def test_executor_for_jobs_env_override(self, monkeypatch):
        from repro.sweep import SWEEP_EXECUTOR_ENV
        monkeypatch.setenv(SWEEP_EXECUTOR_ENV, "thread")
        assert executor_for_jobs(4) == "thread"
        monkeypatch.setenv(SWEEP_EXECUTOR_ENV, "bogus")
        with pytest.raises(ParameterError):
            executor_for_jobs(4)

    def test_executor_env_wins_at_every_jobs_value(self, monkeypatch):
        """README precedence: the env var applies whether or not
        --jobs was given explicitly (it used to silently lose for
        jobs None/1)."""
        from repro.sweep import SWEEP_EXECUTOR_ENV
        monkeypatch.setenv(SWEEP_EXECUTOR_ENV, "thread")
        assert executor_for_jobs(None) == "thread"
        assert executor_for_jobs(1) == "thread"
        assert executor_for_jobs(1, n_points=4) == "thread"
        assert executor_for_jobs(4) == "thread"

    def test_executor_env_loses_to_explicit_parallel(self,
                                                     monkeypatch):
        from repro.sweep import SWEEP_EXECUTOR_ENV
        monkeypatch.setenv(SWEEP_EXECUTOR_ENV, "thread")
        assert executor_for_jobs(4, parallel="process") == "process"
        # An explicit executor at jobs=1 still collapses to serial
        # (nothing to parallelize), env or not.
        assert executor_for_jobs(1, parallel="thread") == "serial"

    def test_invalid_executor_env_ignored_for_serial_runs(
            self, monkeypatch):
        """A bogus env value must not break single-job invocations
        that never consulted it before."""
        from repro.sweep import SWEEP_EXECUTOR_ENV
        monkeypatch.setenv(SWEEP_EXECUTOR_ENV, "bogus")
        assert executor_for_jobs(None) == "serial"
        assert executor_for_jobs(1) == "serial"

    def test_worker_error_propagates(self):
        spec = SweepSpec.product(a=(1, -1), b=(2,))
        with pytest.raises(ParameterError):
            run_sweep(require_positive_product, spec)
        with pytest.raises(ParameterError):
            run_sweep(require_positive_product, spec,
                      executor="thread", jobs=2)
        with pytest.raises(ParameterError):
            run_sweep(require_positive_product, spec,
                      executor="process", jobs=2)


@pytest.mark.integration
class TestSeededSweepDeterminism:
    """Acceptance: serial == thread == process == chunked ==
    distributed for every seeded consumer sweep."""

    def test_memsys_uber_sweep_all_executors_equal(self):
        from repro.device import MTJDevice, PAPER_EVAL_DEVICE
        from repro.memsys import uber_sweep
        device = MTJDevice(PAPER_EVAL_DEVICE)
        kwargs = dict(pitch_ratios=(3.0, 1.5), patterns=("solid0",),
                      rows=16, cols=16, seed=3)
        serial = uber_sweep(device, **kwargs)
        for executor in ("thread", "process", "chunked",
                         "distributed"):
            result = uber_sweep(device, executor=executor, jobs=2,
                                **kwargs)
            assert result.rows == serial.rows, executor
            assert result.extras["uber"] == serial.extras["uber"], \
                executor

    def test_design_space_all_executors_equal(self):
        from repro.apps import DesignSpaceExplorer
        from repro.device import PAPER_EVAL_DEVICE
        explorer = DesignSpaceExplorer(PAPER_EVAL_DEVICE)
        serial = explorer.sweep([30e-9, 35e-9], [2.0, 3.0])
        for executor in ("thread", "process", "chunked",
                         "distributed"):
            result = explorer.sweep([30e-9, 35e-9], [2.0, 3.0], jobs=2,
                                    executor=executor)
            # DesignPoint is a frozen dataclass: == is exact equality.
            assert result == serial, executor

    def test_disk_backed_store_matches_fresh_compute(self, tmp_path):
        """Parity: a sweep over disk-cached kernels is bit-identical
        to one that computes every kernel fresh."""
        from repro.arrays.kernel_disk import DiskKernelCache
        from repro.arrays.kernel_store import KernelStore
        from repro.stack import build_reference_stack
        stack = build_reference_stack(45e-9)
        offsets = [(d * 67.5e-9, 0.0) for d in (1, 2)] + [
            (67.5e-9, 67.5e-9), (0.0, 135e-9)]

        disk = DiskKernelCache(tmp_path / "kc")
        warm = KernelStore(disk=disk)
        fresh_values = {}
        for kind in ("fixed", "fl"):
            for off in offsets:
                fresh_values[(kind, off)] = warm.kernel(stack, off,
                                                        kind)
        warm.flush_disk()

        cold = KernelStore(disk=disk)
        for (kind, off), expected in fresh_values.items():
            assert cold.kernel(stack, off, kind) == expected
        stats = cold.stats()
        assert stats["misses"] == 0
        assert stats["disk_hits"] == len(fresh_values)

    def test_run_all_parallel_equals_serial(self, monkeypatch):
        # Shrink the registry to two real figures to keep this fast;
        # workers resolve the names against the full registry, so the
        # patched subset only narrows what the parent schedules.
        from repro.experiments import runner
        subset = {k: runner.EXPERIMENTS[k] for k in ("fig4a", "fig4b")}
        monkeypatch.setattr(runner, "EXPERIMENTS", subset)
        serial = runner.run_all()
        threaded = runner.run_all(executor="thread", jobs=2)
        parallel = runner.run_all(jobs=2)
        assert (list(serial) == list(threaded) == list(parallel)
                == ["fig4a", "fig4b"])
        for name in serial:
            for b in (threaded[name], parallel[name]):
                a = serial[name]
                assert a.rows == b.rows
                assert a.comparisons == b.comparisons
                assert set(a.series) == set(b.series)
                for key in a.series:
                    np.testing.assert_array_equal(a.series[key][1],
                                                  b.series[key][1])
