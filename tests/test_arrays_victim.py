"""Tests for the victim-cell analysis and full-array field maps."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arrays import ArrayLayout, VictimAnalysis
from repro.arrays.pattern import ALL_AP, ALL_P, checkerboard, solid
from repro.arrays.victim import array_field_map
from repro.device import MTJState
from repro.errors import ParameterError


@pytest.fixture
def victim(eval_device):
    return VictimAnalysis(eval_device, pitch=70e-9)


class TestTotals:
    def test_intra_only_without_pattern(self, victim, eval_device):
        assert victim.hz_total() == pytest.approx(
            eval_device.intra_stray_field())

    def test_total_is_sum(self, victim):
        total = victim.hz_total(ALL_AP)
        assert total == pytest.approx(
            victim.hz_intra() + victim.hz_inter(ALL_AP))

    def test_np0_more_negative_than_np255(self, victim):
        assert victim.hz_total(ALL_P) < victim.hz_total(ALL_AP)


class TestFiguresOfMerit:
    def test_ic_pattern_ordering(self, victim):
        # AP->P: NP8=0 (more negative field) needs more current.
        assert victim.ic("AP->P", ALL_P) > victim.ic("AP->P", ALL_AP)

    def test_tw_pattern_ordering(self, victim):
        assert (victim.switching_time(0.9, ALL_P)
                > victim.switching_time(0.9, ALL_AP))

    def test_delta_pattern_ordering(self, victim):
        assert (victim.delta(MTJState.P, ALL_P)
                < victim.delta(MTJState.P, ALL_AP))

    def test_worst_case_is_p_np0(self, victim):
        delta, state, pattern = victim.worst_case_delta()
        assert state is MTJState.P
        assert pattern.to_int() == 0
        assert delta == pytest.approx(victim.delta(MTJState.P, ALL_P))

    def test_spreads_ordered(self, victim):
        lo, hi = victim.ic_spread("AP->P")
        assert lo < hi
        lo_t, hi_t = victim.tw_spread(0.9)
        assert lo_t < hi_t

    def test_summary_keys(self, victim):
        summary = victim.summary()
        assert summary["pitch_nm"] == pytest.approx(70.0)
        assert summary["hz_intra_oe"] < 0
        assert summary["ic_ap_p_np0_ua"] > summary["ic_ap_p_np255_ua"]

    def test_rejects_non_device(self):
        with pytest.raises(ParameterError):
            VictimAnalysis("device", pitch=70e-9)


class TestArrayFieldMap:
    def test_border_is_nan(self, eval_device):
        layout = ArrayLayout(pitch=70e-9, rows=4, cols=4)
        out = array_field_map(eval_device, layout, solid(4, 4, 0))
        assert np.isnan(out[0, 0])
        assert np.isfinite(out[1, 1])

    def test_solid_patterns_bracket_checkerboard(self, eval_device):
        layout = ArrayLayout(pitch=70e-9, rows=5, cols=5)
        lo = array_field_map(eval_device, layout, solid(5, 5, 0))[2, 2]
        hi = array_field_map(eval_device, layout, solid(5, 5, 1))[2, 2]
        mid = array_field_map(eval_device, layout,
                              checkerboard(5, 5))[2, 2]
        assert lo < mid < hi

    def test_interior_uniform_for_solid(self, eval_device):
        layout = ArrayLayout(pitch=70e-9, rows=5, cols=5)
        out = array_field_map(eval_device, layout, solid(5, 5, 1))
        interior = out[1:-1, 1:-1]
        assert np.nanstd(interior) < 1e-9

    def test_shape_mismatch_rejected(self, eval_device):
        layout = ArrayLayout(pitch=70e-9, rows=4, cols=4)
        with pytest.raises(ParameterError):
            array_field_map(eval_device, layout, solid(5, 5, 0))
