"""Tests for the MTJDevice facade and the paper parameter set."""

from __future__ import annotations

import math

import pytest

from repro.device import (
    DeviceParameters,
    MTJDevice,
    MTJState,
    PAPER_EVAL_DEVICE,
)
from repro.errors import ParameterError
from repro.stack import build_reference_stack
from repro.units import am_to_oe


class TestMTJState:
    def test_mz(self):
        assert MTJState.P.mz == +1
        assert MTJState.AP.mz == -1

    def test_opposite(self):
        assert MTJState.P.opposite is MTJState.AP
        assert MTJState.AP.opposite is MTJState.P

    def test_bit_convention(self):
        # Paper: 0 stores P, 1 stores AP.
        assert MTJState.P.bit == 0
        assert MTJState.AP.bit == 1
        assert MTJState.from_bit(0) is MTJState.P
        assert MTJState.from_bit(1) is MTJState.AP

    def test_bad_bit(self):
        with pytest.raises(ParameterError):
            MTJState.from_bit(2)


class TestPaperParameters:
    def test_ic0_calibrated(self, eval_device):
        assert eval_device.ic0() * 1e6 == pytest.approx(57.2, rel=1e-6)

    def test_hk_and_delta0(self):
        assert am_to_oe(PAPER_EVAL_DEVICE.hk) == pytest.approx(4646.8)
        assert PAPER_EVAL_DEVICE.delta0 == 45.5

    def test_intra_field_anchor(self, eval_device):
        # ~ -325 Oe, the value implied by the paper's 7 % Ic shift.
        assert eval_device.intra_stray_field_oe() == pytest.approx(
            -325.0, abs=25.0)

    def test_seven_percent_ic_shift(self, eval_device):
        h = eval_device.intra_stray_field()
        up = eval_device.ic("AP->P", h)
        down = eval_device.ic("P->AP", h)
        ic0 = eval_device.ic0()
        assert up / ic0 == pytest.approx(1.07, abs=0.01)
        assert down / ic0 == pytest.approx(0.93, abs=0.01)

    def test_activation_volume_below_geometric(self, eval_device):
        ratio = eval_device.activation_volume / eval_device.fl_volume
        assert 0.2 < ratio < 0.6

    def test_intra_field_cached(self, eval_device):
        first = eval_device.intra_stray_field()
        assert eval_device.intra_stray_field() is not None
        assert eval_device._intra_field_cache == first


class TestDeviceBehaviour:
    def test_delta_ordering_under_negative_field(self, eval_device):
        h = eval_device.intra_stray_field()
        dp = eval_device.delta(MTJState.P, h)
        dap = eval_device.delta(MTJState.AP, h)
        assert dp < PAPER_EVAL_DEVICE.delta0 < dap

    def test_delta_at_temperature(self, eval_device):
        h = eval_device.intra_stray_field()
        cold = eval_device.delta(MTJState.P, h, temperature=273.15)
        hot = eval_device.delta(MTJState.P, h, temperature=423.15)
        assert hot < cold

    def test_retention_time_exponential_sensitivity(self, eval_device):
        h = eval_device.intra_stray_field()
        t_p = eval_device.retention_time(MTJState.P, h)
        t_ap = eval_device.retention_time(MTJState.AP, h)
        # Delta_AP - Delta_P ~ 13 units -> ~e^13 ratio.
        assert t_ap / t_p > 1e4

    def test_switching_time_direction(self, eval_device):
        h = eval_device.intra_stray_field()
        tw_ap = eval_device.switching_time(0.9, h, MTJState.AP)
        tw_p = eval_device.switching_time(0.9, h, MTJState.P)
        assert tw_p < tw_ap  # P->AP is the fast direction here.

    def test_describe_keys(self, eval_device):
        desc = eval_device.describe()
        for key in ("ecd_nm", "hk_oe", "delta0", "ic0_ua",
                    "intra_stray_oe"):
            assert key in desc
        assert desc["ecd_nm"] == pytest.approx(35.0)

    def test_stack_mismatch_rejected(self):
        stack55 = build_reference_stack(55e-9)
        with pytest.raises(ParameterError):
            MTJDevice(PAPER_EVAL_DEVICE, stack=stack55)

    def test_params_validated(self):
        with pytest.raises(ParameterError):
            DeviceParameters(
                ecd=35e-9, hk=3.7e5, delta0=45.5, hc=1.75e5,
                alpha=0.015, eta=1.5, polarization=0.3,
                resistance=PAPER_EVAL_DEVICE.resistance)

    def test_with_ecd(self):
        bigger = PAPER_EVAL_DEVICE.with_ecd(55e-9)
        assert bigger.ecd == pytest.approx(55e-9)
        assert bigger.hk == PAPER_EVAL_DEVICE.hk

    def test_rh_simulator_uses_intra_field(self, eval_device):
        sim = eval_device.rh_simulator()
        assert sim.hz_stray == pytest.approx(
            eval_device.intra_stray_field())
