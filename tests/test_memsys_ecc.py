"""Property tests for the Hamming SEC-DED code.

The code's contract over randomized words: a clean round-trip is exact,
every single-bit corruption is located and corrected, and every
double-bit corruption is detected as uncorrectable.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.memsys.ecc import (
    DecodeOutcome,
    HammingSECDED,
    NoECC,
    make_ecc,
)

WIDTHS = (8, 16, 64)


def random_words(rng, n, k):
    return (rng.random((n, k)) < 0.5).astype(np.int8)


class TestConstruction:
    def test_72_64_geometry(self):
        ecc = HammingSECDED(64)
        assert ecc.n_data == 64
        assert ecc.n_parity == 8
        assert ecc.n_code == 72

    @pytest.mark.parametrize("k", WIDTHS)
    def test_parity_count_is_minimal(self, k):
        ecc = HammingSECDED(k)
        r = ecc.n_parity - 1
        assert 2 ** r >= k + r + 1
        assert 2 ** (r - 1) < k + (r - 1) + 1

    def test_registry(self):
        assert isinstance(make_ecc("secded"), HammingSECDED)
        assert isinstance(make_ecc("none"), NoECC)
        with pytest.raises(ParameterError):
            make_ecc("bch")

    def test_rejects_bad_shapes(self):
        ecc = HammingSECDED(8)
        with pytest.raises(ParameterError):
            ecc.encode(np.zeros((3, 9), dtype=np.int8))
        with pytest.raises(ParameterError):
            ecc.decode(np.zeros((3, 5), dtype=np.int8))
        with pytest.raises(ParameterError):
            ecc.encode(np.full((3, 8), 2, dtype=np.int8))


class TestRoundTrip:
    @pytest.mark.parametrize("k", WIDTHS)
    def test_clean_roundtrip(self, rng, k):
        ecc = HammingSECDED(k)
        data = random_words(rng, 50, k)
        decoded, outcomes = ecc.decode(ecc.encode(data))
        assert np.array_equal(decoded, data)
        assert np.all(outcomes == DecodeOutcome.OK)

    @pytest.mark.parametrize("k", WIDTHS)
    def test_single_bit_corrected_every_position(self, rng, k):
        """k = 1: every corruption position over randomized words."""
        ecc = HammingSECDED(k)
        data = random_words(rng, ecc.n_code, k)
        cw = ecc.encode(data)
        # Word i gets its bit i flipped: all positions in one batch.
        cw[np.arange(ecc.n_code), np.arange(ecc.n_code)] ^= 1
        decoded, outcomes = ecc.decode(cw)
        assert np.all(outcomes == DecodeOutcome.CORRECTED)
        assert np.array_equal(decoded, data)

    @pytest.mark.parametrize("k", WIDTHS)
    def test_double_bit_detected(self, rng, k):
        """k = 2: random position pairs over randomized words."""
        ecc = HammingSECDED(k)
        n_trials = 300
        data = random_words(rng, n_trials, k)
        cw = ecc.encode(data)
        for i in range(n_trials):
            a, b = rng.choice(ecc.n_code, size=2, replace=False)
            cw[i, a] ^= 1
            cw[i, b] ^= 1
        _, outcomes = ecc.decode(cw)
        assert np.all(outcomes == DecodeOutcome.DETECTED)

    def test_mixed_corruption_batch(self, rng):
        """0/1/2-bit corruptions in one decode call."""
        ecc = HammingSECDED(64)
        data = random_words(rng, 3, 64)
        cw = ecc.encode(data)
        cw[1, 17] ^= 1
        cw[2, 3] ^= 1
        cw[2, 44] ^= 1
        decoded, outcomes = ecc.decode(cw)
        assert list(outcomes) == [DecodeOutcome.OK,
                                  DecodeOutcome.CORRECTED,
                                  DecodeOutcome.DETECTED]
        assert np.array_equal(decoded[:2], data[:2])


class TestClassification:
    def test_classify_errors_secded(self):
        ecc = HammingSECDED(64)
        out = ecc.classify_errors(np.array([0, 1, 2, 3, 7]))
        assert list(out) == [DecodeOutcome.OK, DecodeOutcome.CORRECTED,
                             DecodeOutcome.DETECTED,
                             DecodeOutcome.SILENT, DecodeOutcome.SILENT]

    def test_classify_errors_none(self):
        ecc = NoECC(64)
        out = ecc.classify_errors(np.array([0, 1, 5]))
        assert list(out) == [DecodeOutcome.OK, DecodeOutcome.SILENT,
                             DecodeOutcome.SILENT]

    def test_noecc_passthrough(self, rng):
        ecc = NoECC(16)
        data = random_words(rng, 10, 16)
        cw = ecc.encode(data)
        assert np.array_equal(cw, data)
        decoded, outcomes = ecc.decode(cw)
        assert np.array_equal(decoded, data)
        assert np.all(outcomes == DecodeOutcome.OK)

    def test_data_positions_cover_data(self, rng):
        """Codeword data positions carry the data bits verbatim."""
        for k in WIDTHS:
            ecc = HammingSECDED(k)
            data = random_words(rng, 5, k)
            cw = ecc.encode(data)
            assert np.array_equal(cw[:, ecc.data_positions], data)
