"""Tests for CurrentLoop / LoopCollection superposition."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.fields import CurrentLoop, LoopCollection


@pytest.fixture
def loop():
    return CurrentLoop(center=(0.0, 0.0, -3e-9), radius=17.5e-9,
                       current=1.5e-3)


class TestCurrentLoop:
    def test_moment(self, loop):
        assert loop.moment == pytest.approx(
            loop.current * np.pi * loop.radius ** 2)

    def test_scaled(self, loop):
        double = loop.scaled(2.0)
        assert double.current == pytest.approx(2 * loop.current)
        point = np.array([40e-9, 0.0, 0.0])
        np.testing.assert_allclose(double.field(point),
                                   2 * loop.field(point), rtol=1e-12)

    def test_translated_field_shifts(self, loop):
        moved = loop.translated(dx=10e-9)
        a = loop.field(np.array([0.0, 0.0, 0.0]))
        b = moved.field(np.array([10e-9, 0.0, 0.0]))
        np.testing.assert_allclose(a, b, rtol=1e-12)

    def test_biot_savart_agrees(self, loop):
        pts = np.array([[0.0, 0.0, 0.0], [30e-9, 10e-9, 5e-9]])
        np.testing.assert_allclose(
            loop.field_biot_savart(pts, n_segments=2000),
            loop.field(pts), rtol=5e-5, atol=1e-2)

    def test_invalid_center_rejected(self):
        with pytest.raises(ParameterError):
            CurrentLoop(center=(0.0, 0.0), radius=1e-9, current=1e-3)


class TestLoopCollection:
    def test_linearity(self, loop):
        other = CurrentLoop(center=(50e-9, 0.0, 0.0), radius=10e-9,
                            current=-0.8e-3)
        both = LoopCollection([loop, other])
        pts = np.array([[0.0, 0.0, 0.0], [25e-9, 25e-9, 2e-9]])
        np.testing.assert_allclose(
            both.field(pts), loop.field(pts) + other.field(pts),
            rtol=1e-12)

    def test_concatenation(self, loop):
        a = LoopCollection([loop])
        b = LoopCollection([loop.translated(dx=90e-9)])
        combined = a + b
        assert len(combined) == 2

    def test_scaled_collection(self, loop):
        col = LoopCollection([loop, loop.translated(dx=40e-9)])
        half = col.scaled(0.5)
        pts = np.array([[10e-9, 0.0, 0.0]])
        np.testing.assert_allclose(half.field(pts),
                                   0.5 * col.field(pts), rtol=1e-12)

    def test_total_moment(self, loop):
        col = LoopCollection([loop, loop.scaled(-1.0)])
        assert col.total_moment == pytest.approx(0.0, abs=1e-30)

    def test_field_z_component(self, loop):
        col = LoopCollection([loop])
        pts = np.array([[0.0, 0.0, 0.0], [40e-9, 0.0, 0.0]])
        np.testing.assert_allclose(col.field_z(pts),
                                   col.field(pts)[:, 2], rtol=1e-15)

    def test_empty_collection_zero_field(self):
        col = LoopCollection([])
        np.testing.assert_allclose(
            col.field(np.array([[1e-9, 0.0, 0.0]])), 0.0)

    def test_rejects_non_loop(self):
        with pytest.raises(ParameterError):
            LoopCollection([42])

    def test_translated_collection(self, loop):
        col = LoopCollection([loop]).translated(dy=20e-9)
        assert col.loops[0].center[1] == pytest.approx(20e-9)

    def test_opposite_currents_cancel(self, loop):
        cancel = LoopCollection([loop, loop.scaled(-1.0)])
        pts = np.array([[12e-9, 7e-9, 3e-9]])
        np.testing.assert_allclose(cancel.field(pts), 0.0, atol=1e-20)
