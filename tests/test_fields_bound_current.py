"""Tests for the bound-current reduction of magnetized layers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.fields import bound_current, layer_to_loops
from repro.fields.bound_current import auto_subloops
from repro.geometry import Layer, LayerRole
from repro.materials import COFEB_FREE, MGO


@pytest.fixture
def fl_layer():
    return Layer(role=LayerRole.FREE, material=COFEB_FREE,
                 z_bottom=-1e-9, z_top=1e-9, direction=+1)


class TestBoundCurrent:
    def test_ib_equals_ms_t(self):
        assert bound_current(1.1e6, 2e-9) == pytest.approx(2.2e-3)

    def test_rejects_non_positive(self):
        with pytest.raises(ParameterError):
            bound_current(0.0, 2e-9)


class TestAutoSubloops:
    def test_half_nm_spacing(self):
        assert auto_subloops(2.0e-9) == 4
        assert auto_subloops(0.3e-9) == 1
        assert auto_subloops(4.0e-9) == 8


class TestLayerToLoops:
    def test_total_current_conserved(self, fl_layer):
        loops = layer_to_loops(fl_layer, 17.5e-9, n_sub=5)
        total = sum(lp.current for lp in loops)
        assert total == pytest.approx(fl_layer.moment_per_area)

    def test_loops_span_thickness(self, fl_layer):
        loops = layer_to_loops(fl_layer, 17.5e-9, n_sub=4)
        zs = [lp.center[2] for lp in loops]
        assert min(zs) > fl_layer.z_bottom
        assert max(zs) < fl_layer.z_top
        # Slab centers are evenly spaced.
        np.testing.assert_allclose(np.diff(sorted(zs)),
                                   fl_layer.thickness / 4)

    def test_direction_override_flips_sign(self, fl_layer):
        plus = layer_to_loops(fl_layer, 17.5e-9, n_sub=2, direction=+1)
        minus = layer_to_loops(fl_layer, 17.5e-9, n_sub=2, direction=-1)
        for a, b in zip(plus, minus):
            assert a.current == pytest.approx(-b.current)

    def test_lateral_center(self, fl_layer):
        loops = layer_to_loops(fl_layer, 17.5e-9,
                               center_xy=(90e-9, -90e-9), n_sub=1)
        assert loops[0].center[0] == pytest.approx(90e-9)
        assert loops[0].center[1] == pytest.approx(-90e-9)

    def test_temperature_scales_current(self, fl_layer):
        cold = layer_to_loops(fl_layer, 17.5e-9, n_sub=1)
        hot = layer_to_loops(fl_layer, 17.5e-9, n_sub=1,
                             temperature=500.0)
        assert abs(hot[0].current) < abs(cold[0].current)

    def test_nonmagnetic_rejected(self):
        barrier = Layer(role=LayerRole.BARRIER, material=MGO,
                        z_bottom=-2e-9, z_top=-1e-9)
        with pytest.raises(ParameterError):
            layer_to_loops(barrier, 17.5e-9)

    def test_bad_direction_rejected(self, fl_layer):
        with pytest.raises(ParameterError):
            layer_to_loops(fl_layer, 17.5e-9, direction=0)

    def test_solenoid_beats_midplane_lump_close_up(self, fl_layer):
        """A thick layer lumped at its midplane misestimates near fields.

        The sub-loop discretization must converge: 8 sub-loops vs 64
        sub-loops agree much better than 1 vs 64.
        """
        from repro.fields import LoopCollection
        thick = Layer(role=LayerRole.HARD,
                      material=COFEB_FREE.with_ms(6e5),
                      z_bottom=-9.5e-9, z_top=-5.5e-9, direction=-1)
        point = (0.0, 0.0, 0.0)
        reference = LoopCollection(
            layer_to_loops(thick, 10e-9, n_sub=64)).field(point)[2]
        lumped = LoopCollection(
            layer_to_loops(thick, 10e-9, n_sub=1)).field(point)[2]
        refined = LoopCollection(
            layer_to_loops(thick, 10e-9, n_sub=8)).field(point)[2]
        assert abs(refined - reference) < 0.1 * abs(lumped - reference)
