"""The run-integrity layer: manifests, replay audit, fsck, canary.

The contract under test is single-sentence: a flipped byte anywhere in
a run artifact — spool result, checkpoint, service memo — is detected
and counted, never served as an answer. Hypothesis drives the digest
canonicalization properties (dict ordering and JSON number spellings
must collapse exactly like ``query_fingerprint`` collapses them); the
audit and fsck tests each corrupt one concrete artifact and assert
detect → repair round-trips.
"""

import dataclasses
import glob
import json
import os
import pickle

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import IntegrityError, ParameterError
from repro.integrity import (
    AuditReport,
    RunManifest,
    audit_cache_dir,
    audit_checkpoint_dir,
    audit_spool_run,
    blob_digest,
    cross_backend_canary,
    fsck_spool,
    list_quarantine,
    load_sealed,
    pack_record,
    pickle_digest,
    record_digest,
    seal_record,
    unpack_record,
    verify_sealed,
    write_sealed,
)
from repro.memsys import build_engine
from repro.resilience import CheckpointManager, FaultPlan
from repro.service.results_cache import ResultsCache
from repro.sweep.distributed import (
    QUARANTINE_DIR,
    DistributedBroker,
)
from repro.units import nm_to_m


def square_point(x):
    """Module-level so spool tasks pickle by reference and the audit
    replay can re-import it."""
    return {"y": x * x}


def _kept_run(tmp_path, n_points=7, chunk_size=2):
    """One completed broker run preserved for audit."""
    spool = str(tmp_path / "spool")
    broker = DistributedBroker(square_point, spool=spool, jobs=1,
                               spawn=0, poll=0.02, timeout=60.0,
                               chunk_size=chunk_size, keep_run=True)
    values = broker.run([{"x": i} for i in range(n_points)])
    runs = [name for name in os.listdir(spool)
            if name.startswith("run-")]
    assert len(runs) == 1
    return spool, os.path.join(spool, runs[0]), values, broker


# ---------------------------------------------------------------------------
# digest canonicalization properties
# ---------------------------------------------------------------------------

_scalars = st.one_of(
    st.integers(min_value=-10**9, max_value=10**9),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.booleans(),
    st.text(max_size=12),
    st.none(),
)
_records = st.dictionaries(st.text(min_size=1, max_size=8), _scalars,
                           max_size=6)


class TestDigestProperties:
    @given(_records)
    def test_digest_invariant_to_dict_ordering(self, record):
        reversed_record = dict(reversed(list(record.items())))
        assert record_digest(record) == record_digest(reversed_record)

    @given(st.dictionaries(st.text(min_size=1, max_size=8),
                           st.integers(min_value=-10**6,
                                       max_value=10**6),
                           max_size=6))
    def test_digest_collapses_int_and_float_spellings(self, record):
        """70 and 70.0 are the same physical value; the digest must
        collapse them exactly like query_fingerprint does."""
        floated = {key: float(value) for key, value in record.items()}
        assert record_digest(record) == record_digest(floated)

    @given(_records)
    def test_digest_distinguishes_bools_from_numbers(self, record):
        """The int/float collapse must not also collapse True onto
        1.0 — booleans are flags, not measurements."""
        if any(value is True or value is False
               for value in record.values()):
            numeric = {key: (1 if value is True else
                             0 if value is False else value)
                       for key, value in record.items()}
            assert record_digest(record) != record_digest(numeric)

    def test_digest_matches_fingerprint_collapse_rule(self):
        # The shared-rule regression pin: if canonical_scalar changes,
        # both of these flip together or the import in protocol.py
        # was broken.
        from repro.integrity.manifest import canonical_scalar
        from repro.service.protocol import (UberQuery,
                                            query_fingerprint)
        assert canonical_scalar(70) == canonical_scalar(70.0)
        assert query_fingerprint(UberQuery(pitch_nm=70)) \
            == query_fingerprint(UberQuery(pitch_nm=70.0))

    def test_numpy_scalars_canonicalize(self):
        assert record_digest({"n": np.int64(3)}) \
            == record_digest({"n": 3.0})
        assert record_digest({"x": np.float64(2.5)}) \
            == record_digest({"x": 2.5})


# ---------------------------------------------------------------------------
# framed records and sealed JSON
# ---------------------------------------------------------------------------

class TestFraming:
    def test_pack_unpack_round_trip(self):
        payload = {"values": [1, 2.5, "x"], "chunk": 3}
        assert unpack_record(pack_record(payload)) == payload

    @pytest.mark.parametrize("mangle", [
        lambda blob: blob[:10],                      # truncation
        lambda blob: b"XXXXXXXX" + blob[8:],         # bad magic
        lambda blob: blob[:-3],                      # short body
        lambda blob: blob[:-1] + bytes([blob[-1] ^ 1]),  # flipped byte
    ])
    def test_mangled_frame_raises(self, mangle):
        blob = pack_record({"values": list(range(8))})
        with pytest.raises(IntegrityError):
            unpack_record(mangle(blob))

    def test_sealed_record_round_trip(self, tmp_path):
        path = str(tmp_path / "record.json")
        write_sealed(path, {"kind": "test", "n": 4})
        record = load_sealed(path)
        assert record["n"] == 4
        assert verify_sealed(record)

    def test_sealed_record_tamper_detected(self, tmp_path):
        path = str(tmp_path / "record.json")
        write_sealed(path, {"kind": "test", "n": 4})
        record = json.load(open(path))
        record["n"] = 5
        json.dump(record, open(path, "w"))
        assert not verify_sealed(record)
        with pytest.raises(IntegrityError):
            load_sealed(path)

    def test_seal_ignores_key_order(self):
        a = seal_record({"x": 1, "y": 2})
        b = seal_record({"y": 2, "x": 1})
        assert a["check"] == b["check"]


# ---------------------------------------------------------------------------
# spool-run manifest + audit
# ---------------------------------------------------------------------------

@pytest.mark.integration
class TestSpoolAudit:
    def test_clean_run_audits_green(self, tmp_path):
        spool, run_path, values, broker = _kept_run(tmp_path)
        assert values == [square_point(i) for i in range(7)]
        assert broker.stats["manifest"] == os.path.join(
            run_path, "manifest.json")
        report = audit_spool_run(run_path, sample=4, seed=0)
        assert report.passed
        counts = report.counts()
        assert counts["fail"] == 0
        assert counts["pass"] >= 5  # manifest + digests + replays

    def test_flipped_byte_in_result_fails_audit(self, tmp_path):
        spool, run_path, _, _ = _kept_run(tmp_path)
        victim = sorted(glob.glob(
            os.path.join(run_path, "results", "chunk-*.pkl")))[0]
        blob = bytearray(open(victim, "rb").read())
        blob[-5] ^= 0x01
        open(victim, "wb").write(bytes(blob))
        report = audit_spool_run(run_path, sample=4, seed=0)
        assert not report.passed
        failed = [c.name for c in report.checks if c.status == "fail"]
        assert "chunk-000000/digest" in failed

    def test_tampered_values_with_refreshed_frame_fail_digest(
            self, tmp_path):
        """Re-framing a forged payload beats the frame check but not
        the manifest digest — the audit's whole reason to exist."""
        spool, run_path, _, _ = _kept_run(tmp_path)
        victim = sorted(glob.glob(
            os.path.join(run_path, "results", "chunk-*.pkl")))[0]
        payload = unpack_record(open(victim, "rb").read())
        payload["values"] = [{"y": 10**9}] * len(payload["values"])
        open(victim, "wb").write(pack_record(payload))
        report = audit_spool_run(run_path, sample=0, seed=0)
        assert not report.passed

    def test_replay_detects_swapped_inputs(self, tmp_path):
        """Swapping two chunks' archived inputs breaks byte-for-byte
        replay even though every committed result is internally
        consistent."""
        spool, run_path, _, _ = _kept_run(tmp_path)
        a = os.path.join(run_path, "replay", "chunk-000000.pkl")
        b = os.path.join(run_path, "replay", "chunk-000001.pkl")
        blob_a, blob_b = open(a, "rb").read(), open(b, "rb").read()
        open(a, "wb").write(blob_b)
        open(b, "wb").write(blob_a)
        report = audit_spool_run(run_path, sample=4, seed=0)
        assert not report.passed
        failed = [c.name for c in report.checks if c.status == "fail"]
        assert any(name.endswith("/replay") for name in failed)

    def test_manifest_tamper_fails_immediately(self, tmp_path):
        spool, run_path, _, _ = _kept_run(tmp_path)
        path = os.path.join(run_path, "manifest.json")
        record = json.load(open(path))
        record["identity"]["n_points"] = 99
        json.dump(record, open(path, "w"))
        report = audit_spool_run(run_path)
        assert not report.passed
        assert report.checks[0].name == "manifest"
        assert report.checks[0].status == "fail"

    def test_keep_runs_env_knob(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_KEEP_RUNS", "1")
        spool = str(tmp_path / "spool")
        broker = DistributedBroker(square_point, spool=spool, jobs=1,
                                   spawn=0, poll=0.02, timeout=60.0,
                                   chunk_size=2)
        assert broker.keep_run
        broker.run([{"x": i} for i in range(3)])
        assert any(name.startswith("run-")
                   for name in os.listdir(spool))


class TestManifestObject:
    def test_round_trip(self, tmp_path):
        manifest = RunManifest("spool-run", identity={"seed": 3})
        manifest.add_entry("chunk-000000", values_sha256="ab" * 32)
        path = manifest.write(str(tmp_path / "manifest.json"))
        loaded = RunManifest.load(path)
        assert loaded.kind == "spool-run"
        assert loaded.identity == {"seed": 3.0}
        assert loaded.entry("chunk-000000")["values_sha256"] \
            == "ab" * 32
        assert loaded.fingerprint == manifest.fingerprint

    def test_load_rejects_tamper(self, tmp_path):
        manifest = RunManifest("spool-run", identity={"seed": 3})
        path = manifest.write(str(tmp_path / "manifest.json"))
        record = json.load(open(path))
        record["identity"]["seed"] = 4
        json.dump(record, open(path, "w"))
        with pytest.raises(IntegrityError):
            RunManifest.load(path)


# ---------------------------------------------------------------------------
# checkpoint + cache audits
# ---------------------------------------------------------------------------

@pytest.mark.integration
class TestCheckpointAudit:
    def _checkpointed_run(self, tmp_path, eval_device, seed=7):
        manager = CheckpointManager(str(tmp_path))
        engine = build_engine(eval_device, pitch=nm_to_m(70.0),
                              rows=16, cols=16, ecc="secded",
                              workload="random", sampler="bernoulli")
        engine.run(4096, rng=np.random.default_rng(seed),
                   batch_size=1024, checkpoint=manager,
                   checkpoint_every=1024)
        return manager

    def test_clean_dir_audits_green(self, tmp_path, eval_device):
        self._checkpointed_run(tmp_path, eval_device)
        assert os.path.exists(str(tmp_path / "run.manifest.json"))
        report = audit_checkpoint_dir(str(tmp_path))
        assert report.passed
        assert report.counts()["pass"] == 2  # frame + sidecar

    def test_flipped_byte_fails_audit(self, tmp_path, eval_device):
        self._checkpointed_run(tmp_path, eval_device)
        path = str(tmp_path / "run.ckpt")
        blob = bytearray(open(path, "rb").read())
        blob[25] ^= 0x40
        open(path, "wb").write(bytes(blob))
        report = audit_checkpoint_dir(str(tmp_path))
        assert not report.passed

    def test_swapped_blob_caught_by_sidecar(self, tmp_path,
                                            eval_device):
        """A well-framed but *different* checkpoint swapped into place
        passes the frame check; only the sidecar digest catches it."""
        self._checkpointed_run(tmp_path / "a", eval_device, seed=7)
        self._checkpointed_run(tmp_path / "b", eval_device, seed=8)
        blob = open(str(tmp_path / "b" / "run.ckpt"), "rb").read()
        open(str(tmp_path / "a" / "run.ckpt"), "wb").write(blob)
        report = audit_checkpoint_dir(str(tmp_path / "a"))
        assert not report.passed
        failed = {c.name for c in report.checks
                  if c.status == "fail"}
        assert failed == {"run/sidecar"}

    def test_empty_dir_is_skipped_not_failed(self, tmp_path):
        report = audit_checkpoint_dir(str(tmp_path))
        assert report.passed
        assert report.counts()["skipped"] == 1


class TestCacheAudit:
    KEY = "ab" * 16

    def test_clean_dir_audits_green(self, tmp_path):
        cache = ResultsCache(directory=str(tmp_path))
        cache.put(self.KEY, {"answer": 42})
        report = audit_cache_dir(str(tmp_path))
        assert report.passed

    def test_flipped_payload_fails_audit(self, tmp_path):
        cache = ResultsCache(directory=str(tmp_path))
        cache.put(self.KEY, {"answer": 42})
        path = str(tmp_path / f"{self.KEY}.json")
        envelope = json.load(open(path))
        envelope["payload"]["answer"] = 43
        json.dump(envelope, open(path, "w"))
        report = audit_cache_dir(str(tmp_path))
        assert not report.passed

    def test_renamed_entry_fails_fingerprint_check(self, tmp_path):
        cache = ResultsCache(directory=str(tmp_path))
        cache.put(self.KEY, {"answer": 42})
        os.rename(str(tmp_path / f"{self.KEY}.json"),
                  str(tmp_path / f"{'cd' * 16}.json"))
        report = audit_cache_dir(str(tmp_path))
        assert not report.passed


# ---------------------------------------------------------------------------
# cross-backend canary
# ---------------------------------------------------------------------------

class TestCanary:
    def test_identical_counters_pass(self):
        check = cross_backend_canary(
            runner=lambda backend: {"bits": 100, "errors": 2})
        assert check.status == "pass"

    def test_forced_divergence_fails(self):
        def runner(backend):
            counters = {"bits": 100, "errors": 2}
            if backend == "numba":
                counters["errors"] = 3  # a "miscompile"
            return counters

        check = cross_backend_canary(runner=runner)
        assert check.status == "fail"
        assert "errors" in check.detail
        assert "numpy=2" in check.detail

    def test_skipped_without_numba(self):
        from repro.memsys.backends import numba_available
        check = cross_backend_canary()
        if numba_available():  # pragma: no cover - env-dependent
            assert check.status in ("pass", "fail")
        else:
            assert check.status == "skipped"

    def test_report_aggregation(self):
        report = AuditReport("canary")
        report.checks.append(cross_backend_canary(
            runner=lambda backend: {"n": 1}))
        assert report.passed
        assert report.to_record()["counts"]["pass"] == 1


# ---------------------------------------------------------------------------
# spool fsck: detect -> repair round-trips
# ---------------------------------------------------------------------------

@pytest.mark.integration
class TestFsck:
    def test_clean_spool_no_findings(self, tmp_path):
        spool, _, _, _ = _kept_run(tmp_path)
        assert fsck_spool(spool) == []

    def _detect_then_repair(self, spool, kind):
        findings = fsck_spool(spool)
        assert [f.kind for f in findings] == [kind]
        assert not findings[0].repaired
        repaired = fsck_spool(spool, repair=True)
        assert [f.kind for f in repaired] == [kind]
        assert repaired[0].repaired
        assert fsck_spool(spool) == []
        return repaired[0]

    def test_torn_result_round_trip(self, tmp_path):
        spool, run_path, _, _ = _kept_run(tmp_path)
        victim = os.path.join(run_path, "results",
                              "chunk-000001.pkl")
        blob = open(victim, "rb").read()
        open(victim, "wb").write(blob[:len(blob) // 2])
        finding = self._detect_then_repair(spool, "torn-result")
        assert finding.path == victim
        assert not os.path.exists(victim)

    def test_orphaned_claim_round_trip(self, tmp_path):
        spool, run_path, _, _ = _kept_run(tmp_path)
        claim = os.path.join(run_path, "claimed",
                             "chunk-000000.job@deadworker")
        open(claim, "w").close()
        self._detect_then_repair(spool, "orphaned-claim")

    def test_duplicate_commit_round_trip(self, tmp_path):
        spool, run_path, _, _ = _kept_run(tmp_path)
        job = os.path.join(run_path, "queue", "chunk-000000.job")
        with open(job, "wb") as fh:
            pickle.dump([{"x": 0}], fh)
        self._detect_then_repair(spool, "duplicate-commit")

    def test_stray_temp_round_trip(self, tmp_path):
        spool, run_path, _, _ = _kept_run(tmp_path)
        stray = os.path.join(run_path, "results",
                             ".tmp-deadbeef-chunk-000009.pkl")
        open(stray, "wb").close()
        self._detect_then_repair(spool, "stray-temp")

    def test_stray_quarantine_round_trip(self, tmp_path):
        spool, run_path, _, _ = _kept_run(tmp_path)
        qdir = os.path.join(spool, QUARANTINE_DIR)
        os.makedirs(qdir, exist_ok=True)
        record = os.path.join(qdir, "chunk-000000.json")
        json.dump({"chunk": 0, "error": "x", "attempts": 3,
                   "workers": []}, open(record, "w"))
        finding = self._detect_then_repair(spool, "stray-quarantine")
        assert "superseded" in finding.detail

    def test_unparseable_quarantine_flagged(self, tmp_path):
        spool, _, _, _ = _kept_run(tmp_path)
        qdir = os.path.join(spool, QUARANTINE_DIR)
        os.makedirs(qdir, exist_ok=True)
        open(os.path.join(qdir, "chunk-000099.json"),
             "w").write("{not json")
        self._detect_then_repair(spool, "stray-quarantine")

    def test_fsck_over_chaos_mangled_spool(self, tmp_path):
        """The PR's seeded fault kinds leave debris fsck names; after
        --repair the spool scans clean."""
        spool, run_path, _, _ = _kept_run(tmp_path)
        plan = FaultPlan(0, "torn-write")
        victim = os.path.join(run_path, "results",
                              "chunk-000002.pkl")
        plan.corrupt(victim)
        claim = os.path.join(run_path, "claimed",
                             "chunk-000001.job@crashed")
        open(claim, "w").close()
        kinds = sorted(f.kind for f in fsck_spool(spool))
        assert kinds == ["orphaned-claim", "torn-result"]
        assert all(f.repaired for f in fsck_spool(spool, repair=True))
        assert fsck_spool(spool) == []


class TestQuarantineListing:
    def test_lists_json_records(self, tmp_path):
        qdir = tmp_path / QUARANTINE_DIR
        qdir.mkdir()
        json.dump({"chunk": 4, "error": "ValueError('poison')",
                   "error_type": "ValueError", "attempts": 3,
                   "workers": ["w1"]},
                  open(str(qdir / "chunk-000004.json"), "w"))
        records = list_quarantine(str(tmp_path))
        assert len(records) == 1
        assert records[0]["chunk"] == 4
        assert records[0]["error_type"] == "ValueError"

    def test_legacy_pickle_listed_without_deserializing(self,
                                                        tmp_path):
        """A hostile legacy record must be listed by size only —
        unpickling it would execute its payload."""
        qdir = tmp_path / QUARANTINE_DIR
        qdir.mkdir()

        class Bomb:
            def __reduce__(self):
                return (pytest.fail,
                        ("quarantine record was unpickled",))

        with open(str(qdir / "chunk-000001.pkl"), "wb") as fh:
            pickle.dump(Bomb(), fh)
        records = list_quarantine(str(tmp_path))
        assert len(records) == 1
        assert records[0]["legacy"]
        assert records[0]["bytes"] > 0
        assert "chunk" not in records[0]

    def test_empty_spool(self, tmp_path):
        assert list_quarantine(str(tmp_path)) == []


# ---------------------------------------------------------------------------
# misc plumbing
# ---------------------------------------------------------------------------

class TestPlumbing:
    def test_blob_and_pickle_digests(self):
        assert blob_digest(b"abc") == blob_digest(b"abc")
        assert blob_digest(b"abc") != blob_digest(b"abd")
        assert pickle_digest([1, 2]) == pickle_digest([1, 2])
        assert pickle_digest([1, 2]) != pickle_digest([2, 1])

    def test_audit_check_rejects_bad_status(self):
        from repro.integrity import AuditCheck
        with pytest.raises(ValueError):
            AuditCheck("x", "maybe")

    def test_results_cache_rejects_bad_clock(self):
        with pytest.raises(ParameterError):
            ResultsCache(clock=object())
