"""Unit-conversion tests (exact values and hypothesis roundtrips)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro import units

FINITE = st.floats(min_value=-1e12, max_value=1e12,
                   allow_nan=False, allow_infinity=False)
POSITIVE = st.floats(min_value=1e-12, max_value=1e12,
                     allow_nan=False, allow_infinity=False)


class TestKnownValues:
    def test_one_oersted_in_am(self):
        assert units.oe_to_am(1.0) == pytest.approx(79.5774715, rel=1e-6)

    def test_thousand_oe_is_one_koe(self):
        assert units.koe_to_am(1.0) == pytest.approx(
            units.oe_to_am(1000.0))

    def test_emu_cc_equals_kam(self):
        assert units.emu_cc_to_am(1.0) == pytest.approx(1000.0)

    def test_ra_conversion_scale(self):
        assert units.ohm_um2_to_ohm_m2(4.5) == pytest.approx(4.5e-12)

    def test_zero_celsius(self):
        assert units.celsius_to_kelvin(0.0) == pytest.approx(273.15)

    def test_room_temperature(self):
        assert units.celsius_to_kelvin(25.0) == pytest.approx(298.15)

    def test_nm(self):
        assert units.nm_to_m(35.0) == pytest.approx(3.5e-8)

    def test_current_scale(self):
        assert units.ua_to_a(57.2) == pytest.approx(5.72e-5)

    def test_time_scale(self):
        assert units.ns_to_s(4.0) == pytest.approx(4.0e-9)


class TestRoundtrips:
    @given(FINITE)
    def test_oe_roundtrip(self, value):
        assert units.am_to_oe(units.oe_to_am(value)) == pytest.approx(
            value, abs=1e-9 * (1 + abs(value)))

    @given(FINITE)
    def test_koe_roundtrip(self, value):
        assert units.am_to_koe(units.koe_to_am(value)) == pytest.approx(
            value, abs=1e-9 * (1 + abs(value)))

    @given(FINITE)
    def test_emu_roundtrip(self, value):
        assert units.am_to_emu_cc(
            units.emu_cc_to_am(value)) == pytest.approx(
                value, abs=1e-9 * (1 + abs(value)))

    @given(POSITIVE)
    def test_ra_roundtrip(self, value):
        assert units.ohm_m2_to_ohm_um2(
            units.ohm_um2_to_ohm_m2(value)) == pytest.approx(value)

    @given(FINITE)
    def test_length_roundtrip(self, value):
        assert units.m_to_nm(units.nm_to_m(value)) == pytest.approx(
            value, abs=1e-9 * (1 + abs(value)))

    @given(FINITE)
    def test_temperature_roundtrip(self, value):
        assert units.kelvin_to_celsius(
            units.celsius_to_kelvin(value)) == pytest.approx(
                value, abs=1e-9)

    @given(FINITE)
    def test_current_roundtrip(self, value):
        assert units.a_to_ua(units.ua_to_a(value)) == pytest.approx(
            value, abs=1e-12 * (1 + abs(value)))

    @given(FINITE)
    def test_time_roundtrip(self, value):
        assert units.s_to_ns(units.ns_to_s(value)) == pytest.approx(
            value, abs=1e-12 * (1 + abs(value)))


class TestVectorized:
    def test_oe_to_am_on_arrays(self):
        fields = np.array([-100.0, 0.0, 2200.0])
        out = units.oe_to_am(fields)
        assert out.shape == fields.shape
        assert out[1] == 0.0
        assert out[2] == pytest.approx(units.oe_to_am(2200.0))

    def test_paper_hk_value(self):
        # Hk = 4646.8 Oe must convert to ~3.698e5 A/m.
        assert units.oe_to_am(4646.8) == pytest.approx(3.698e5, rel=1e-3)
