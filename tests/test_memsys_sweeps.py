"""Tests for the pitch x pattern x ECC sweeps and their export."""

from __future__ import annotations

import csv
import json
import os

import numpy as np
import pytest

from repro.memsys import secded_margin_pitch, uber_sweep
from repro.memsys.sweeps import SWEEP_HEADERS


@pytest.fixture(scope="module")
def device():
    from repro.device import MTJDevice, PAPER_EVAL_DEVICE
    return MTJDevice(PAPER_EVAL_DEVICE)


@pytest.fixture(scope="module")
def sweep(device):
    return uber_sweep(device, pitch_ratios=(3.0, 2.0, 1.5), rows=32,
                      cols=32)


class TestUberSweep:
    def test_all_criteria_pass(self, sweep):
        assert sweep.all_passed, [
            c.metric for c in sweep.comparisons if not c.passed]

    def test_row_geometry(self, sweep):
        # 3 ratios x 3 patterns x 2 eccs.
        assert len(sweep.rows) == 18
        assert len(sweep.headers) == len(SWEEP_HEADERS)
        assert all(len(row) == len(SWEEP_HEADERS)
                   for row in sweep.rows)

    def test_worst_pattern_uber_rises(self, sweep):
        """The acceptance claim: denser -> higher worst-case UBER."""
        solid = [row for row in sweep.rows
                 if row[2] == "solid0" and row[3] == "secded"]
        ubers = [row[-1] for row in solid]
        assert ubers == sorted(ubers)
        assert ubers[-1] > ubers[0]

    def test_secded_below_raw(self, sweep):
        by_key = sweep.extras["uber"]
        for pattern in sweep.extras["patterns"]:
            none = by_key[f"{pattern}/none"]
            secded = by_key[f"{pattern}/secded"]
            assert all(s < n for s, n in zip(secded, none))

    def test_deterministic(self, device):
        results = [uber_sweep(device, pitch_ratios=(3.0, 1.5),
                              patterns=("solid0",), rows=16, cols=16)
                   for _ in range(2)]
        assert results[0].rows == results[1].rows


class TestMarginPitch:
    def test_finds_threshold(self, device):
        ratio, uber = secded_margin_pitch(device, uber_target=3.5e-4,
                                          rows=32, cols=32)
        assert ratio is not None
        assert 1.5 <= ratio <= 3.0
        assert uber <= 3.5e-4

    def test_impossible_target(self, device):
        ratio, uber = secded_margin_pitch(device, uber_target=1e-30,
                                          rows=16, cols=16)
        assert ratio is None
        assert uber > 1e-30

    def test_empty_ratios_raises(self, device):
        from repro.errors import ParameterError
        with pytest.raises(ParameterError, match="ratios"):
            secded_margin_pitch(device, uber_target=1e-4, ratios=[])
        with pytest.raises(ParameterError, match="ratios"):
            secded_margin_pitch(device, uber_target=1e-4,
                                ratios=np.array([]))

    def test_invalid_target_raises(self, device):
        from repro.errors import ParameterError
        with pytest.raises(ParameterError):
            secded_margin_pitch(device, uber_target=0.0)


class TestEmptySweepValidation:
    def test_numpy_ratio_array_accepted(self, device):
        result = uber_sweep(device, pitch_ratios=np.array([3.0, 1.5]),
                            patterns=("solid0",), rows=16, cols=16)
        assert len(result.rows) == 4  # 2 ratios x 1 pattern x 2 eccs

    def test_empty_pitch_ratios_raises(self, device):
        from repro.errors import ParameterError
        with pytest.raises(ParameterError, match="pitch_ratios"):
            uber_sweep(device, pitch_ratios=())

    def test_nonpositive_ratio_raises(self, device):
        from repro.errors import ParameterError
        with pytest.raises(ParameterError):
            uber_sweep(device, pitch_ratios=(3.0, -1.0), rows=16,
                       cols=16)


class TestExport:
    def test_csv_json_roundtrip(self, sweep, tmp_path):
        """The memsys sweep reuses repro.reporting.export unchanged."""
        from repro.experiments.runner import export
        export(sweep, str(tmp_path))
        csv_path = tmp_path / "memsys_sweep.csv"
        with open(csv_path) as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == SWEEP_HEADERS
        assert len(rows) == 1 + len(sweep.rows)
        series_path = tmp_path / "memsys_sweep_series.json"
        payload = json.loads(series_path.read_text())
        assert payload["all_passed"] is True
        assert os.path.exists(tmp_path / "memsys_sweep_comparison.csv")
