"""Tests for the effective-moment calibration fit."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import fit_effective_moments
from repro.core.intra import IntraCellModel
from repro.errors import CalibrationError
from repro.stack import (
    DEFAULT_HL_MS,
    DEFAULT_RL_MS,
    build_reference_stack,
)
from repro.units import nm_to_m, oe_to_am


SIZES = np.array([nm_to_m(e) for e in (35.0, 55.0, 90.0, 120.0, 175.0)])


class TestExactRecovery:
    def test_recovers_true_moments_from_clean_data(self):
        model = IntraCellModel()
        hz = model.hz_vs_ecd(SIZES)
        result = fit_effective_moments(SIZES, hz)
        assert result.rl_ms == pytest.approx(DEFAULT_RL_MS, rel=1e-6)
        assert result.hl_ms == pytest.approx(DEFAULT_HL_MS, rel=1e-6)
        assert result.rmse_oe < 1e-6

    def test_builder_reproduces_data(self):
        model = IntraCellModel()
        hz = model.hz_vs_ecd(SIZES)
        result = fit_effective_moments(SIZES, hz)
        fitted = IntraCellModel(stack_builder=result.stack_builder)
        np.testing.assert_allclose(fitted.hz_vs_ecd(SIZES), hz,
                                   rtol=1e-9)

    def test_recovery_with_scaled_truth(self):
        # Generate data from a modified stack and confirm the fit finds it.
        def truth_builder(ecd):
            stack = build_reference_stack(ecd)
            from repro.geometry import LayerRole
            stack = stack.with_layer_ms(LayerRole.REFERENCE, 2.5e5)
            return stack.with_layer_ms(LayerRole.HARD, 3.0e5)

        truth = IntraCellModel(stack_builder=truth_builder)
        hz = truth.hz_vs_ecd(SIZES)
        result = fit_effective_moments(SIZES, hz)
        assert result.rl_ms == pytest.approx(2.5e5, rel=1e-6)
        assert result.hl_ms == pytest.approx(3.0e5, rel=1e-6)


class TestNoisyRecovery:
    def test_fit_predicts_curve_despite_noise(self):
        """The RL/HL decomposition is ill-conditioned (nearly collinear
        columns), so noise moves the individual moments — but the fitted
        *curve* must still track the true model closely, including at
        sizes not in the fit.
        """
        rng = np.random.default_rng(12)
        model = IntraCellModel()
        hz = model.hz_vs_ecd(SIZES) + oe_to_am(5.0) * rng.standard_normal(
            SIZES.size)
        result = fit_effective_moments(SIZES, hz)
        assert result.rmse_oe < 15.0
        assert result.rl_ms > 0 and result.hl_ms > 0
        fitted = IntraCellModel(stack_builder=result.stack_builder)
        probe = np.array([nm_to_m(e) for e in (35.0, 70.0, 140.0)])
        errors_oe = np.abs(
            (fitted.hz_vs_ecd(probe) - model.hz_vs_ecd(probe))
            / oe_to_am(1.0))
        assert np.all(errors_oe < 15.0)

    def test_describe_keys(self):
        model = IntraCellModel()
        result = fit_effective_moments(SIZES, model.hz_vs_ecd(SIZES))
        desc = result.describe()
        assert desc["hl_mst_ma"] == pytest.approx(
            DEFAULT_HL_MS * 4.0e-9 * 1e3, rel=1e-6)
        assert "rmse_oe" in desc


class TestFailureModes:
    def test_single_size_degenerate(self):
        sizes = np.array([nm_to_m(55.0)])
        with pytest.raises(CalibrationError):
            fit_effective_moments(sizes, np.array([-2e4]))

    def test_sign_flipped_data_rejected(self):
        model = IntraCellModel()
        hz = -model.hz_vs_ecd(SIZES)  # positive fields: non-physical fit.
        with pytest.raises(CalibrationError):
            fit_effective_moments(SIZES, hz)

    def test_shape_mismatch(self):
        with pytest.raises(CalibrationError):
            fit_effective_moments(SIZES, np.zeros(3))
