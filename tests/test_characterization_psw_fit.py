"""Tests for switching-probability curves and the Hk/Delta0 fit."""

from __future__ import annotations

import numpy as np
import pytest

from repro.characterization import (
    fit_hk_delta0,
    switching_probability_curve,
    switching_probability_model,
)
from repro.device import MTJDevice
from repro.errors import CalibrationError
from repro.experiments.data import wafer_device_parameters
from repro.units import nm_to_m, oe_to_am


@pytest.fixture(scope="module")
def device55():
    return MTJDevice(wafer_device_parameters(nm_to_m(55.0)))


class TestModelCurve:
    def test_monotone_in_field(self):
        fields = np.linspace(0.0, oe_to_am(4000.0), 50)
        probs = switching_probability_model(fields, oe_to_am(3800.0),
                                            100.0, 1e-3)
        assert np.all(np.diff(probs) >= -1e-12)
        assert probs[0] < 1e-6
        assert probs[-1] > 0.999

    def test_probability_bounds(self):
        fields = np.linspace(-oe_to_am(1000.0), oe_to_am(6000.0), 30)
        probs = switching_probability_model(fields, oe_to_am(3800.0),
                                            60.0, 1e-3)
        assert np.all((probs >= 0) & (probs <= 1))

    def test_stray_field_shifts_curve(self):
        fields = np.linspace(0.0, oe_to_am(4000.0), 200)
        base = switching_probability_model(fields, oe_to_am(3800.0),
                                           100.0, 1e-3)
        shifted = switching_probability_model(
            fields, oe_to_am(3800.0), 100.0, 1e-3,
            hz_stray=oe_to_am(-300.0))
        # Negative stray field -> need more applied field -> curve moves
        # right -> probability lower at fixed field.
        mid = len(fields) // 2
        assert shifted[mid] <= base[mid]

    def test_longer_pulse_easier(self):
        field = np.array([oe_to_am(2000.0)])
        short = switching_probability_model(field, oe_to_am(3800.0),
                                            100.0, 1e-4)
        long = switching_probability_model(field, oe_to_am(3800.0),
                                           100.0, 1e-1)
        assert long[0] > short[0]


class TestMonteCarloCurve:
    def test_estimates_match_model(self, device55):
        fields = np.linspace(oe_to_am(1000.0), oe_to_am(3500.0), 15)
        _, measured = switching_probability_curve(
            device55, fields, n_cycles=400, rng=1)
        expected = switching_probability_model(
            fields, device55.params.hk, device55.params.delta0, 1e-3,
            hz_stray=device55.intra_stray_field())
        np.testing.assert_allclose(measured, expected, atol=0.08)

    def test_reproducible_with_seed(self, device55):
        fields = np.linspace(oe_to_am(1500.0), oe_to_am(3000.0), 5)
        _, a = switching_probability_curve(device55, fields,
                                           n_cycles=100, rng=42)
        _, b = switching_probability_curve(device55, fields,
                                           n_cycles=100, rng=42)
        np.testing.assert_array_equal(a, b)


class TestHkDelta0Fit:
    def test_recovers_parameters(self, device55):
        """The paper's extraction: fit Psw(H) -> (Hk, Delta0)."""
        stray = device55.intra_stray_field()
        fields = np.linspace(oe_to_am(1200.0), oe_to_am(3800.0), 40)
        _, probs = switching_probability_curve(
            device55, fields, n_cycles=1000, t_pulse=1e-3, rng=7)
        fit = fit_hk_delta0(fields, probs, t_pulse=1e-3, hz_stray=stray)
        assert fit.hk == pytest.approx(device55.params.hk, rel=0.05)
        assert fit.delta0 == pytest.approx(device55.params.delta0,
                                           rel=0.15)
        assert fit.rmse < 0.05

    def test_wrong_stray_biases_hk(self, device55):
        stray = device55.intra_stray_field()
        fields = np.linspace(oe_to_am(1200.0), oe_to_am(3800.0), 40)
        _, probs = switching_probability_curve(
            device55, fields, n_cycles=1000, t_pulse=1e-3, rng=7)
        biased = fit_hk_delta0(fields, probs, t_pulse=1e-3, hz_stray=0.0)
        correct = fit_hk_delta0(fields, probs, t_pulse=1e-3,
                                hz_stray=stray)
        assert abs(biased.hk - device55.params.hk) > abs(
            correct.hk - device55.params.hk)

    def test_needs_transition(self):
        fields = np.linspace(0.0, oe_to_am(500.0), 10)
        probs = np.zeros(10)
        with pytest.raises(CalibrationError):
            fit_hk_delta0(fields, probs, t_pulse=1e-3)

    def test_needs_enough_points(self):
        with pytest.raises(CalibrationError):
            fit_hk_delta0(np.array([1.0, 2.0]), np.array([0.1, 0.9]),
                          t_pulse=1e-3)
