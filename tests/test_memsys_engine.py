"""Tests for the Monte-Carlo reliability engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.memsys import ScrubPolicy, build_engine, no_scrub
from repro.memsys.engine import _occurrence_rank


@pytest.fixture(scope="module")
def device():
    from repro.device import MTJDevice, PAPER_EVAL_DEVICE
    return MTJDevice(PAPER_EVAL_DEVICE)


class TestOccurrenceRank:
    def test_basic(self):
        rank = _occurrence_rank(np.array([7, 3, 7, 7, 3]))
        assert list(rank) == [0, 0, 1, 2, 1]

    def test_all_unique(self):
        assert _occurrence_rank(np.arange(10)).max() == 0

    def test_empty(self):
        assert _occurrence_rank(np.zeros(0, dtype=np.int64)).size == 0


class TestRun:
    def test_counters_consistent(self, device):
        engine = build_engine(device, pitch=70e-9, rows=16, cols=16)
        result = engine.run(5000, rng=1)
        assert result.n_transactions == 5000
        assert result.n_reads + result.n_writes == 5000
        assert result.bits_read == result.n_reads * 72
        word_counts = (result.words_ok + result.words_corrected
                       + result.words_detected + result.words_silent)
        assert word_counts == result.n_reads
        assert result.uncorrectable_bit_errors <= result.raw_bit_errors
        assert 0.0 < result.raw_ber < 1.0
        assert result.uber <= result.raw_ber
        assert result.simulated_time == pytest.approx(
            5000 * engine.cycle_time)

    def test_deterministic_with_seed(self, device):
        runs = [build_engine(device, pitch=70e-9, rows=16,
                             cols=16).run(3000, rng=7)
                for _ in range(2)]
        assert runs[0].raw_bit_errors == runs[1].raw_bit_errors
        assert runs[0].write_errors == runs[1].write_errors
        assert runs[0].uber == runs[1].uber

    def test_same_engine_reruns_identically(self, device):
        """run() resets workload state: same engine + seed, same run."""
        engine = build_engine(device, pitch=70e-9, rows=16, cols=16,
                              workload="sequential")
        first = engine.run(2000, rng=1)
        second = engine.run(2000, rng=1)
        assert first.raw_bit_errors == second.raw_bit_errors
        assert first.uber == second.uber

    def test_secded_beats_no_ecc(self, device):
        uber = {}
        for ecc in ("none", "secded"):
            engine = build_engine(device, pitch=70e-9, rows=16,
                                  cols=16, ecc=ecc)
            uber[ecc] = engine.run(20_000, rng=11).uber
        assert 0.0 < uber["secded"] < uber["none"]

    def test_stress_workload_runs(self, device):
        engine = build_engine(device, pitch=52.5e-9, rows=16, cols=16,
                              workload="solid0")
        result = engine.run(3000, rng=2)
        assert result.n_transactions == 3000
        assert result.raw_bit_errors > 0

    def test_writeback_reduces_error_accumulation(self, device):
        raw = {}
        for writeback in (False, True):
            engine = build_engine(device, pitch=70e-9, rows=16,
                                  cols=16, workload="read-heavy",
                                  writeback=writeback)
            raw[writeback] = engine.run(20_000, rng=3).raw_ber
        assert raw[True] < raw[False]

    def test_validation(self, device):
        engine = build_engine(device, pitch=70e-9, rows=16, cols=16)
        with pytest.raises(Exception):
            engine.run(0)
        with pytest.raises(ParameterError):
            build_engine(device, pitch=70e-9, workload=object())


class TestRetentionAndScrub:
    def test_retention_flips_at_hot_slow_corner(self, device):
        """Long cycles at high temperature make retention visible."""
        engine = build_engine(device, pitch=52.5e-9, rows=16, cols=16,
                              workload="read-heavy", temperature=420.0,
                              cycle_time=10.0)
        result = engine.run(2000, rng=5)
        assert result.retention_flips > 0

    def test_scrub_reduces_uber_at_retention_corner(self, device):
        """Read-only traffic at a hot retention corner: without repair,
        flips pile up into uncorrectable pairs; a per-window scrub
        keeps the accumulation inside the SEC-DED budget.
        """
        from repro.memsys.traffic import Workload
        uber = {}
        for label, scrub in (("none", None),
                             ("scrubbed", ScrubPolicy(0.06))):
            engine = build_engine(device, pitch=52.5e-9, rows=16,
                                  cols=16,
                                  workload=Workload(read_fraction=1.0),
                                  temperature=420.0, cycle_time=1.3e-4,
                                  nominal_wer=1e-4, writeback=False,
                                  scrub=scrub)
            result = engine.run(12_000, rng=9, batch_size=500)
            uber[label] = result.uber
            if label == "scrubbed":
                assert result.n_scrubs > 0
                assert result.scrub_corrected_words > 0
        assert uber["scrubbed"] < uber["none"]

    def test_no_scrub_policy(self):
        policy = no_scrub()
        assert not policy.enabled
        assert not policy.due(1e9)
        with pytest.raises(ParameterError):
            policy.mark_done(1.0)

    def test_scrub_schedule(self):
        policy = ScrubPolicy(10.0)
        assert not policy.due(9.0)
        assert policy.due(10.0)
        policy.mark_done(10.0)
        assert not policy.due(19.0)
        assert policy.due(20.0)
        # Stepping over several periods catches up instead of looping.
        policy.mark_done(55.0)
        assert not policy.due(59.0)
        assert policy.due(60.0)


class TestExpectationMode:
    def test_matches_monte_carlo(self, device):
        """Expectation mode agrees with a long MC run on UBER."""
        engine = build_engine(device, pitch=70e-9, rows=16, cols=16)
        expected = engine.expected_rates(rng=1)
        mc = build_engine(device, pitch=70e-9, rows=16,
                          cols=16).run(100_000, rng=1)
        assert expected["uber"] == pytest.approx(mc.uber, rel=0.35)

    def test_no_ecc_uber_equals_raw(self, device):
        engine = build_engine(device, pitch=70e-9, rows=16, cols=16,
                              ecc="none")
        rates = engine.expected_rates(rng=0)
        assert rates["uber"] == pytest.approx(rates["raw_ber"])

    def test_result_renders_as_experiment(self, device):
        engine = build_engine(device, pitch=70e-9, rows=16, cols=16)
        result = engine.run(2000, rng=1)
        exp = result.to_experiment_result()
        assert exp.experiment_id == "memsys"
        assert exp.extras["uber"] == result.uber
        from repro.experiments.runner import render
        text = render(exp, plot=False)
        assert "raw BER" in text


class TestPhaseProfile:
    def _counters(self, result):
        return (result.raw_bit_errors, result.write_errors,
                result.disturb_flips, result.retention_flips,
                result.uncorrectable_bit_errors, result.words_ok)

    @pytest.mark.parametrize("sampler", ["bernoulli", "binomial"])
    def test_profile_breakdown_attached(self, device, sampler):
        engine = build_engine(device, pitch=70e-9, rows=16, cols=16,
                              sampler=sampler)
        result = engine.run(2000, rng=4, profile=True)
        profile = result.extras["profile"]
        assert set(profile) - {"other", "total"} <= {
            "classify", "draw", "place", "ecc", "scrub"}
        assert profile["total"] > 0
        for seconds in profile.values():
            assert seconds >= 0.0
        # Phases partition the run: their sum plus "other" is total.
        phases = sum(v for k, v in profile.items() if k != "total")
        assert phases == pytest.approx(profile["total"], rel=1e-6)

    def test_profile_does_not_change_draw_stream(self, device):
        engine = build_engine(device, pitch=70e-9, rows=16, cols=16,
                              sampler="binomial",
                              scrub=ScrubPolicy(5e-4))
        plain = engine.run(3000, rng=9)
        profiled = engine.run(3000, rng=9, profile=True)
        assert self._counters(plain) == self._counters(profiled)
        assert "profile" not in plain.extras
        assert "profile" in profiled.extras

    def test_scrub_phase_recorded(self, device):
        engine = build_engine(device, pitch=70e-9, rows=16, cols=16,
                              sampler="binomial",
                              scrub=ScrubPolicy(1e-5))
        result = engine.run(3000, rng=2, profile=True)
        assert result.n_scrubs > 0
        assert result.extras["profile"]["scrub"] > 0.0

    def test_nested_phases_book_exclusive_time(self):
        import time as time_mod

        from repro.memsys.engine import PhaseProfiler

        profiler = PhaseProfiler()
        with profiler.phase("scrub"):
            time_mod.sleep(0.01)
            with profiler.phase("draw"):
                time_mod.sleep(0.01)
            time_mod.sleep(0.01)
        assert profiler.seconds["draw"] >= 0.01
        assert profiler.seconds["scrub"] >= 0.02
        # The inner phase's time is not double-counted in the outer.
        assert profiler.seconds["scrub"] < 0.035
