"""Tests for the process-wide kernel store and stack fingerprinting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arrays import InterCellCoupling, KernelStore, get_kernel_store
from repro.arrays.kernel_store import stack_fingerprint
from repro.errors import ParameterError
from repro.fields import LoopCollection, layer_to_loops
from repro.stack import build_reference_stack


@pytest.fixture
def store():
    """A private store, isolated from the process-wide singleton."""
    return KernelStore()


@pytest.fixture(scope="module")
def stack():
    return build_reference_stack(55e-9)


class TestHitMiss:
    def test_first_lookup_misses_second_hits(self, store, stack):
        offset = (90e-9, 0.0)
        a = store.kernel(stack, offset, "fl")
        assert store.stats() == {"entries": 1, "hits": 0, "misses": 1}
        b = store.kernel(stack, offset, "fl")
        assert store.stats() == {"entries": 1, "hits": 1, "misses": 1}
        assert a == b

    def test_kinds_are_distinct_entries(self, store, stack):
        offset = (90e-9, 0.0)
        fl = store.kernel(stack, offset, "fl")
        fixed = store.kernel(stack, offset, "fixed")
        assert len(store) == 2
        assert fl != fixed

    def test_equal_stacks_share_entries(self, store):
        a = build_reference_stack(55e-9)
        b = build_reference_stack(55e-9)
        store.kernel(a, (90e-9, 0.0), "fl")
        store.kernel(b, (90e-9, 0.0), "fl")
        assert store.stats()["hits"] == 1
        assert len(store) == 1

    def test_clear_resets(self, store, stack):
        store.kernel(stack, (90e-9, 0.0), "fl")
        store.clear()
        assert store.stats() == {"entries": 0, "hits": 0, "misses": 0}

    def test_value_matches_direct_evaluation(self, store, stack):
        offset = (70e-9, 70e-9)
        loops = layer_to_loops(stack.free_layer, stack.radius,
                               center_xy=offset, direction=+1)
        expected = float(
            LoopCollection(loops).field((0.0, 0.0, 0.0))[2])
        assert store.kernel(stack, offset, "fl") == pytest.approx(
            expected, rel=1e-12)


class TestFingerprint:
    def test_deterministic(self, stack):
        assert stack_fingerprint(stack) == stack_fingerprint(
            build_reference_stack(55e-9))

    def test_moment_change_invalidates(self, stack, store):
        from repro.geometry import LayerRole
        modified = stack.with_layer_ms(LayerRole.REFERENCE, 2.0e5)
        assert stack_fingerprint(modified) != stack_fingerprint(stack)
        store.kernel(stack, (90e-9, 0.0), "fixed")
        store.kernel(modified, (90e-9, 0.0), "fixed")
        assert len(store) == 2
        assert store.stats()["hits"] == 0

    def test_ecd_change_invalidates(self, stack):
        assert stack_fingerprint(build_reference_stack(35e-9)) != \
            stack_fingerprint(stack)

    def test_temperature_scales_fingerprint(self, stack, store):
        cold = stack_fingerprint(stack, temperature=None)
        hot = stack_fingerprint(stack, temperature=400.0)
        assert cold != hot
        store.kernel(stack, (90e-9, 0.0), "fl")
        store.kernel(stack, (90e-9, 0.0), "fl", temperature=400.0)
        assert len(store) == 2

    def test_rejects_non_stack(self):
        with pytest.raises(ParameterError):
            stack_fingerprint("not a stack")

    def test_numpy_scalar_geometry_digests_identically(self):
        """np.float64-built stacks must share keys AND disk digests
        with float-built ones — key_digest hashes repr(key), and a
        numpy scalar reprs differently from the ==-equal float."""
        from repro.arrays.kernel_disk import key_digest
        plain = stack_fingerprint(build_reference_stack(35e-9))
        from_numpy = stack_fingerprint(
            build_reference_stack(np.float64(35e-9)))
        assert plain == from_numpy
        assert key_digest(plain) == key_digest(from_numpy)

    def test_evaluation_point_keys_entries(self, store, stack):
        store.kernel(stack, (90e-9, 0.0), "fl")
        store.kernel(stack, (90e-9, 0.0), "fl",
                     evaluation_point=(0.0, 0.0, 1e-9))
        assert len(store) == 2

    def test_unknown_kind_rejected(self, store, stack):
        with pytest.raises(ParameterError):
            store.kernel(stack, (90e-9, 0.0), "bogus")


class TestKernelBatch:
    """The batched path must be bit-identical to scalar lookups and
    share their cache entries (this is the non-bench parity guard for
    ``benchmarks/test_bench_field_map.py``)."""

    OFFSETS = [(90e-9, 0.0), (0.0, 90e-9), (90e-9, 90e-9),
               (-180e-9, 90e-9), (-90e-9, -90e-9)]

    @pytest.mark.parametrize("kind", ("fixed", "fl"))
    def test_bit_identical_to_scalar(self, stack, kind):
        scalar = np.array([KernelStore().kernel(stack, off, kind)
                           for off in self.OFFSETS])
        batch = KernelStore().kernel_batch(stack, self.OFFSETS, kind)
        np.testing.assert_array_equal(batch, scalar)

    def test_bit_identical_with_point_and_temperature(self, stack):
        point, temp = (1e-9, -2e-9, 3e-9), 350.0
        scalar = np.array([
            KernelStore().kernel(stack, off, "fl",
                                 evaluation_point=point,
                                 temperature=temp)
            for off in self.OFFSETS])
        batch = KernelStore().kernel_batch(stack, self.OFFSETS, "fl",
                                           evaluation_point=point,
                                           temperature=temp)
        np.testing.assert_array_equal(batch, scalar)

    def test_shares_entries_with_scalar_path(self, store, stack):
        for off in self.OFFSETS:
            store.kernel(stack, off, "fl")
        batch = store.kernel_batch(stack, self.OFFSETS, "fl")
        stats = store.stats()
        assert stats["hits"] == len(self.OFFSETS)
        assert stats["misses"] == len(self.OFFSETS)
        scalar_again = store.kernel(stack, self.OFFSETS[0], "fl")
        assert scalar_again == batch[0]

    def test_partial_batch_computes_only_missing(self, store, stack):
        store.kernel(stack, self.OFFSETS[0], "fl")
        store.kernel_batch(stack, self.OFFSETS, "fl")
        stats = store.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == len(self.OFFSETS)
        assert len(store) == len(self.OFFSETS)

    def test_result_order_matches_offsets(self, store, stack):
        forward = store.kernel_batch(stack, self.OFFSETS, "fixed")
        backward = store.kernel_batch(stack, self.OFFSETS[::-1],
                                      "fixed")
        np.testing.assert_array_equal(backward, forward[::-1])

    def test_rejects_bad_shapes_and_kinds(self, store, stack):
        with pytest.raises(ParameterError):
            store.kernel_batch(stack, [90e-9, 0.0], "fl")
        with pytest.raises(ParameterError):
            store.kernel_batch(stack, [(90e-9, 0.0, 0.0)], "fl")
        with pytest.raises(ParameterError):
            store.kernel_batch(stack, [(90e-9, 0.0)], "bogus")

    def test_extended_neighborhood_rides_batch_path(self, stack):
        """The window kernels equal per-offset scalar lookups exactly."""
        from repro.arrays import ExtendedNeighborhood
        hood = ExtendedNeighborhood(stack, 90e-9, order=2)
        reference = KernelStore()
        for off, (fixed, fl) in hood.kernels().items():
            dx, dy = off[0] * 90e-9, off[1] * 90e-9
            assert fixed == reference.kernel(stack, (dx, dy), "fixed")
            assert fl == reference.kernel(stack, (dx, dy), "fl")


class TestSharedAcrossConsumers:
    def test_coupling_instances_share_global_store(self, stack):
        store = get_kernel_store()
        InterCellCoupling(stack, 91e-9).kernels()
        stats_before = store.stats()
        InterCellCoupling(stack, 91e-9).kernels()
        stats_after = store.stats()
        assert stats_after["entries"] == stats_before["entries"]
        assert stats_after["hits"] >= stats_before["hits"] + 4

    def test_coupling_matches_store_value(self, stack):
        coupling = InterCellCoupling(stack, 90e-9)
        direct = coupling.neighborhood.aggressor_positions()[0]
        assert coupling._kernel(direct, "fl") == pytest.approx(
            get_kernel_store().kernel(stack, direct, "fl"), rel=1e-15)

    def test_temperature_coupling_uses_scaled_kernels(self, stack):
        warm = InterCellCoupling(stack, 90e-9, temperature=350.0)
        cold = InterCellCoupling(stack, 90e-9)
        # Bloch scaling weakens the moments -> weaker kernels.
        assert abs(warm.kernels().fl_direct) < abs(
            cold.kernels().fl_direct)
