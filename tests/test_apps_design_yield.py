"""Tests for the design-space explorer and the yield analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import (
    ArrayYieldAnalysis,
    DESIGN_HEADERS,
    DesignSpaceExplorer,
    RetentionBudgetPlanner,
    classify_retention,
)
from repro.characterization import ProcessVariation
from repro.device import MTJDevice, PAPER_EVAL_DEVICE
from repro.device.retention import SECONDS_PER_YEAR
from repro.errors import ParameterError
from repro.units import celsius_to_kelvin


class TestDesignSpace:
    @pytest.fixture(scope="class")
    def explorer(self):
        return DesignSpaceExplorer(PAPER_EVAL_DEVICE)

    def test_point_fields(self, explorer):
        point = explorer.evaluate(35e-9, 70e-9)
        assert point.pitch_ratio == pytest.approx(2.0)
        assert point.density_gbit_mm2 > 0
        assert 0 < point.psi < 0.2
        assert point.ic_spread > 0
        assert point.worst_delta > 0
        assert len(point.row()) == len(DESIGN_HEADERS)

    def test_denser_point_worse_coupling(self, explorer):
        dense = explorer.evaluate(35e-9, 52.5e-9)
        sparse = explorer.evaluate(35e-9, 105e-9)
        assert dense.density_gbit_mm2 > sparse.density_gbit_mm2
        assert dense.psi > sparse.psi
        assert dense.ic_spread > sparse.ic_spread
        assert dense.worst_delta < sparse.worst_delta

    def test_sweep_grid(self, explorer):
        points = explorer.sweep([30e-9, 40e-9], [1.5, 2.0, 3.0])
        assert len(points) == 6
        assert points[0].ecd == pytest.approx(30e-9)
        assert points[-1].pitch_ratio == pytest.approx(3.0)

    def test_overlapping_cells_rejected(self, explorer):
        with pytest.raises(ParameterError):
            explorer.evaluate(35e-9, 30e-9)

    def test_pareto_front_filters_dominated(self, explorer):
        points = explorer.sweep([35e-9], [1.5, 2.0, 2.5, 3.0])
        front = explorer.pareto_front(points)
        # Along a single eCD, density and psi trade monotonically: every
        # point is Pareto-optimal.
        assert len(front) == len(points)

    def test_pareto_constraints(self, explorer):
        points = explorer.sweep([35e-9], [1.5, 2.0, 3.0])
        front = explorer.pareto_front(points, max_psi=0.03)
        assert all(p.psi <= 0.03 for p in front)
        assert len(front) < len(points)


class TestYieldAnalysis:
    def test_result_counts(self):
        analysis = ArrayYieldAnalysis(PAPER_EVAL_DEVICE, 70e-9)
        result = analysis.run(n_samples=60, rng=9, min_delta=30.0,
                              max_tw=50e-9)
        assert result.n_samples == 60
        assert 0.0 <= result.yield_fraction <= 1.0
        assert result.worst_delta_std > 0

    def test_stricter_spec_lower_yield(self):
        analysis = ArrayYieldAnalysis(PAPER_EVAL_DEVICE, 70e-9)
        loose = analysis.run(n_samples=60, rng=9, min_delta=25.0,
                             max_tw=50e-9)
        strict = analysis.run(n_samples=60, rng=9, min_delta=40.0,
                              max_tw=50e-9)
        assert strict.yield_fraction <= loose.yield_fraction

    def test_variation_widens_distribution(self):
        tight = ArrayYieldAnalysis(
            PAPER_EVAL_DEVICE, 70e-9,
            variation=ProcessVariation(0.01, 0.01, 0.01))
        wide = ArrayYieldAnalysis(
            PAPER_EVAL_DEVICE, 70e-9,
            variation=ProcessVariation(0.08, 0.08, 0.08))
        r_tight = tight.run(n_samples=60, rng=5)
        r_wide = wide.run(n_samples=60, rng=5)
        assert r_wide.worst_delta_std > r_tight.worst_delta_std

    def test_yield_vs_pitch_runs(self):
        analysis = ArrayYieldAnalysis(PAPER_EVAL_DEVICE, 70e-9)
        results = analysis.yield_vs_pitch([52.5e-9, 105e-9],
                                          n_samples=30, rng=2)
        assert len(results) == 2

    def test_rejects_bad_base(self):
        with pytest.raises(ParameterError):
            ArrayYieldAnalysis("params", 70e-9)


class TestRetentionBudget:
    @pytest.fixture(scope="class")
    def planner(self):
        device = MTJDevice(PAPER_EVAL_DEVICE)
        return RetentionBudgetPlanner(device, pitch=70e-9,
                                      n_bits=1024 * 1024)

    def test_budget_fields(self, planner):
        budget = planner.budget(celsius_to_kelvin(25.0), 1e-3)
        assert budget.worst_delta > 0
        assert budget.mean_retention > 0
        assert budget.scrub_interval > 0
        assert budget.application_class in (
            "storage", "embedded", "cache", "unusable")

    def test_hotter_needs_more_scrubbing(self, planner):
        cold = planner.scrub_interval(celsius_to_kelvin(25.0), 1e-3)
        hot = planner.scrub_interval(celsius_to_kelvin(125.0), 1e-3)
        assert hot < cold

    def test_tiny_array_may_need_no_scrub(self):
        device = MTJDevice(PAPER_EVAL_DEVICE)
        planner = RetentionBudgetPlanner(device, pitch=70e-9, n_bits=1)
        interval = planner.scrub_interval(
            celsius_to_kelvin(-20.0), 0.5,
            mission_time=1.0)
        assert interval == float("inf")

    def test_classification_thresholds(self):
        assert classify_retention(20 * SECONDS_PER_YEAR) == "storage"
        assert classify_retention(SECONDS_PER_YEAR / 2.0) == "embedded"
        assert classify_retention(10.0) == "cache"
        assert classify_retention(1e-6) == "unusable"

    def test_sampled_failures_match_closed_form(self):
        """The binomial per-period draw reproduces the closed-form
        array failure probability 1 - (1 - p_flip)^n_bits."""
        import math
        device = MTJDevice(PAPER_EVAL_DEVICE)
        planner = RetentionBudgetPlanner(device, pitch=70e-9,
                                         n_bits=4096)
        hot = celsius_to_kelvin(125.0)
        interval = planner.scrub_interval(hot, 0.05)
        p_flip = planner.flip_probability(hot, interval)
        closed = -math.expm1(planner.n_bits * math.log1p(-p_flip))
        n_periods = 20_000
        sampled = planner.sampled_failure_probability(
            hot, interval, n_periods=n_periods, rng=2)
        se = math.sqrt(closed * (1.0 - closed) / n_periods)
        assert abs(sampled - closed) < 6.0 * se + 1e-12

    def test_sample_flips_vectorized_and_seeded(self):
        device = MTJDevice(PAPER_EVAL_DEVICE)
        planner = RetentionBudgetPlanner(device, pitch=70e-9,
                                         n_bits=64)
        hot = celsius_to_kelvin(125.0)
        a = planner.sample_flips(hot, 1.0, n_periods=100, rng=5)
        b = planner.sample_flips(hot, 1.0, n_periods=100, rng=5)
        assert a.shape == (100,)
        assert (a == b).all()
        assert (a >= 0).all() and (a <= 64).all()

    def test_sample_flips_rejects_bad_arguments(self):
        device = MTJDevice(PAPER_EVAL_DEVICE)
        planner = RetentionBudgetPlanner(device, pitch=70e-9, n_bits=8)
        with pytest.raises(ParameterError):
            planner.sample_flips(300.0, -1.0)
        with pytest.raises(ParameterError):
            planner.sample_flips(300.0, 1.0, n_periods=0)
