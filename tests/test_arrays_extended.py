"""Tests for extended neighborhoods and the vectorized array field map."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arrays import (
    ArrayLayout,
    ExtendedNeighborhood,
    InterCellCoupling,
    fast_array_field_map,
)
from repro.arrays.pattern import checkerboard, random_pattern, solid
from repro.arrays.victim import array_field_map
from repro.errors import ParameterError
from repro.stack import build_reference_stack


@pytest.fixture(scope="module")
def stack55():
    return build_reference_stack(55e-9)


@pytest.fixture(scope="module")
def hood(stack55):
    return ExtendedNeighborhood(stack55, 90e-9, order=2)


class TestExtendedNeighborhood:
    def test_offset_count(self, hood):
        assert len(hood.offsets()) == 24  # 5x5 minus the victim.

    def test_order1_matches_3x3_model(self, stack55):
        hood1 = ExtendedNeighborhood(stack55, 90e-9, order=1)
        coupling = InterCellCoupling(stack55, 90e-9)
        assert hood1.max_variation() == pytest.approx(
            coupling.max_variation(), rel=1e-9)
        # All-P window == NP8 = 0 field.
        all_p = hood1.hz_inter({})
        assert all_p == pytest.approx(coupling.hz_inter_fast(0),
                                      rel=1e-9)

    def test_ring_breakdown_sums(self, hood):
        rings = hood.ring_contributions()
        assert set(rings) == {1, 2}
        total_fl = sum(fl for _, fl in rings.values())
        assert 2 * total_fl == pytest.approx(hood.max_variation(),
                                             rel=1e-9)

    def test_ring2_weaker_than_ring1(self, hood):
        rings = hood.ring_contributions()
        assert rings[2][1] < rings[1][1]

    def test_truncation_error_positive_but_bounded(self, hood):
        err = hood.truncation_error()
        assert 0.05 < err < 0.5

    def test_truncation_error_converges(self, stack55):
        # Adding ring 3 changes the total variation by less than adding
        # ring 2 did: the series converges.
        v1 = ExtendedNeighborhood(stack55, 90e-9, 1).max_variation()
        v2 = ExtendedNeighborhood(stack55, 90e-9, 2).max_variation()
        v3 = ExtendedNeighborhood(stack55, 90e-9, 3).max_variation()
        assert (v2 - v1) > (v3 - v2) > 0

    def test_hz_inter_sign_handling(self, hood):
        all_p = hood.hz_inter({})
        flipped = hood.hz_inter({(1, 0): -1})
        assert flipped > all_p  # flipping a P neighbor raises Hz.
        with pytest.raises(ParameterError):
            hood.hz_inter({(1, 0): 0})

    def test_summary_structure(self, hood):
        summary = hood.summary_oe()
        assert summary["order"] == 2
        assert summary["rings"][1]["fl_abs_oe"] > 0


class TestFastArrayFieldMap:
    @pytest.fixture(scope="class")
    def device(self):
        from repro.device import MTJDevice, PAPER_EVAL_DEVICE
        return MTJDevice(PAPER_EVAL_DEVICE)

    def test_matches_slow_map(self, device):
        layout = ArrayLayout(pitch=70e-9, rows=6, cols=6)
        for pattern in (solid(6, 6, 0), solid(6, 6, 1),
                        checkerboard(6, 6),
                        random_pattern(6, 6, rng=3)):
            slow = array_field_map(device, layout, pattern)
            fast = fast_array_field_map(device, 70e-9, pattern.bits,
                                        order=1)
            np.testing.assert_allclose(slow[1:-1, 1:-1],
                                       fast[1:-1, 1:-1], rtol=1e-9)

    def test_border_nan_depth_follows_order(self, device):
        bits = solid(8, 8, 0).bits
        fast2 = fast_array_field_map(device, 70e-9, bits, order=2)
        assert np.isnan(fast2[1, 1])  # ring-2 window incomplete there.
        assert np.isfinite(fast2[2, 2])

    def test_order2_differs_from_order1(self, device):
        bits = checkerboard(8, 8).bits
        f1 = fast_array_field_map(device, 70e-9, bits, order=1)
        f2 = fast_array_field_map(device, 70e-9, bits, order=2)
        assert not np.allclose(f1[2:-2, 2:-2], f2[2:-2, 2:-2])

    def test_large_array_performance_path(self, device):
        bits = random_pattern(64, 64, rng=5).bits
        out = fast_array_field_map(device, 70e-9, bits, order=1)
        assert np.isfinite(out[1:-1, 1:-1]).all()

    def test_too_small_array_rejected(self, device):
        with pytest.raises(ParameterError):
            fast_array_field_map(device, 70e-9, solid(3, 3, 0).bits,
                                 order=2)

    def test_non_binary_rejected(self, device):
        with pytest.raises(ParameterError):
            fast_array_field_map(device, 70e-9,
                                 np.full((5, 5), 2), order=1)
