"""End-to-end server tests: the acceptance criteria of the service.

Each test spins a real :class:`ReliabilityServer` on a unix socket
inside ``asyncio.run`` and talks to it with the blocking
:class:`ServiceClient` from worker threads — the exact production
topology, minus process boundaries (the CLI smoke test at the bottom
adds those).
"""

import asyncio
import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.errors import ParameterError, ServiceError
from repro.service import ReliabilityServer, ServiceClient
from repro.service.runners import RUNNERS
from repro.sweep.distributed import SWEEP_SPOOL_ENV

#: Cheap deterministic operating point reused across tests (16x16 is
#: the smallest array holding a 72-bit SEC-DED codeword comfortably).
SMALL = {"rows": 16, "cols": 16, "pitch_nm": 70.0}


def _serve(test_body, **server_kwargs):
    """Run ``test_body(server)`` in a thread against a live server."""
    server_kwargs.setdefault("capacity", 16)

    async def main():
        server = ReliabilityServer(**server_kwargs)
        await server.start()
        serve_task = asyncio.create_task(
            server.serve_forever(install_signals=False))
        try:
            await asyncio.to_thread(test_body, server)
        finally:
            server.request_stop()
            await asyncio.wait_for(serve_task, timeout=30.0)

    asyncio.run(main())


class TestRoundTrip:
    def test_uber_query_round_trips(self, tmp_path):
        path = str(tmp_path / "svc.sock")

        def body(server):
            with ServiceClient(path=path) as client:
                event = client.query("uber", **SMALL)
            assert event["ok"] and not event["cached"]
            assert 0.0 <= event["result"]["uber"] <= 1.0
            assert event["result"]["mode"] == "expected"
            assert len(event["fingerprint"]) == 32

        _serve(body, path=path)

    def test_repeat_query_is_a_memo_hit_counted_in_stats(self,
                                                         tmp_path):
        path = str(tmp_path / "svc.sock")

        def body(server):
            with ServiceClient(path=path) as client:
                cold = client.query("uber", **SMALL)
                # Different JSON spelling of the same physics: int
                # pitch, explicit default ecc — still one fingerprint.
                warm = client.query("uber", rows=16, cols=16,
                                    pitch_nm=70, ecc="secded")
                stats = client.query("stats")["result"]
            assert not cold["cached"]
            assert warm["cached"]
            assert warm["result"] == cold["result"]
            assert stats["cache"]["hits"] == 1
            assert stats["endpoints"]["uber"]["count"] == 2
            assert stats["endpoints"]["uber"]["errors"] == 0
            assert stats["endpoints"]["uber"]["latency"]["p50_ms"] >= 0
            assert stats["in_flight"] == 0

        _serve(body, path=path)

    def test_tcp_transport(self):
        def body(server):
            with ServiceClient(port=server.port) as client:
                event = client.query("uber", **SMALL)
            assert event["ok"]

        _serve(body, port=0)

    def test_bad_requests_become_error_events(self, tmp_path):
        path = str(tmp_path / "svc.sock")

        def body(server):
            with ServiceClient(path=path) as client:
                with pytest.raises(ServiceError, match="unknown op"):
                    client.query("nonsense")
                # Domain errors from the engine itself also arrive as
                # error events, not torn connections.
                with pytest.raises(ServiceError, match="codeword"):
                    client.query("uber", rows=4, cols=4)
                # And the connection is still usable afterwards.
                assert client.query("stats")["ok"]

        _serve(body, path=path)

    def test_rejects_ambiguous_addresses(self):
        with pytest.raises(ParameterError):
            ReliabilityServer(path="/tmp/x.sock", port=1234)
        with pytest.raises(ParameterError):
            ReliabilityServer()


class TestCoalescing:
    def test_concurrent_identical_queries_share_one_engine_run(
            self, tmp_path, monkeypatch):
        """Acceptance: N concurrent duplicate queries -> exactly one
        engine run, observed through the server's own run counter."""
        path = str(tmp_path / "svc.sock")
        calls = []
        release = threading.Event()
        real_uber = RUNNERS["uber"]

        def gated_uber(query, abort, publish):
            calls.append(1)
            release.wait(30.0)
            return real_uber(query, abort, publish)

        monkeypatch.setitem(RUNNERS, "uber", gated_uber)

        def body(server):
            n = 4
            events = [None] * n

            def one(i):
                with ServiceClient(path=path) as client:
                    events[i] = client.query("uber", **SMALL)

            threads = [threading.Thread(target=one, args=(i,))
                       for i in range(n)]
            for thread in threads:
                thread.start()
            # Wait until all N subscribers joined the one shared run,
            # then let it go — no timing assumptions.
            deadline = time.monotonic() + 10.0
            while (server.coalescer.started + server.coalescer.joined
                   < n):
                assert time.monotonic() < deadline
                time.sleep(0.005)
            release.set()
            for thread in threads:
                thread.join(timeout=30.0)

            assert all(e is not None and e["ok"] for e in events)
            results = [e["result"] for e in events]
            assert all(r == results[0] for r in results)
            assert server.coalescer.started == 1
            assert server.coalescer.joined == n - 1
            # Joined subscribers are flagged; starter + memo are not.
            assert sum(1 for e in events if e["coalesced"]) == n - 1
            assert len(calls) == 1

        _serve(body, path=path)


class TestProgressStreaming:
    def test_long_sweep_streams_progress_events(self, tmp_path):
        """Acceptance: a sweep query streams >= 2 progress events
        before its terminal result."""
        path = str(tmp_path / "svc.sock")

        def body(server):
            seen = []
            with ServiceClient(path=path) as client:
                event = client.query(
                    "sweep", pitch_ratios=[3.0, 2.0, 1.5],
                    patterns=["random"], eccs=["secded"],
                    rows=16, cols=16,
                    on_progress=seen.append)
            assert event["ok"]
            assert len(event["result"]["rows"]) == 3
            assert len(seen) >= 2
            dones = [e["done"] for e in seen]
            assert dones == sorted(dones)
            assert seen[-1]["done"] == seen[-1]["total"] == 3

        _serve(body, path=path)


class TestDrain:
    def test_stop_drains_in_flight_queries(self, tmp_path,
                                           monkeypatch):
        """Acceptance: a drain requested mid-query still delivers the
        in-flight result before the server exits."""
        path = str(tmp_path / "svc.sock")
        release = threading.Event()
        real_uber = RUNNERS["uber"]

        def gated_uber(query, abort, publish):
            release.wait(30.0)
            return real_uber(query, abort, publish)

        monkeypatch.setitem(RUNNERS, "uber", gated_uber)

        async def main():
            server = ReliabilityServer(path=path, capacity=16)
            await server.start()
            serve_task = asyncio.create_task(
                server.serve_forever(install_signals=False))

            holder = {}

            def slow_query():
                with ServiceClient(path=path) as client:
                    holder["event"] = client.query("uber", **SMALL)

            query_thread = threading.Thread(target=slow_query)
            query_thread.start()
            while server.in_flight == 0:
                await asyncio.sleep(0.005)

            server.request_stop()          # drain begins mid-query
            await asyncio.sleep(0.05)
            assert not serve_task.done()   # still waiting on the query
            release.set()
            await asyncio.wait_for(serve_task, timeout=30.0)
            query_thread.join(timeout=10.0)

            assert holder["event"]["ok"]
            assert not os.path.exists(path)   # socket cleaned up

        asyncio.run(main())


class TestHardening:
    """Deadlines, load shedding, and the per-op circuit breaker."""

    def test_overload_sheds_instead_of_queueing(self, tmp_path,
                                                monkeypatch):
        path = str(tmp_path / "svc.sock")
        release = threading.Event()
        real_uber = RUNNERS["uber"]

        def gated_uber(query, abort, publish):
            release.wait(30.0)
            return real_uber(query, abort, publish)

        monkeypatch.setitem(RUNNERS, "uber", gated_uber)

        def body(server):
            holder = {}

            def slow_query():
                with ServiceClient(path=path) as client:
                    holder["event"] = client.query("uber", **SMALL)

            thread = threading.Thread(target=slow_query)
            thread.start()
            deadline = time.monotonic() + 10.0
            while server.in_flight == 0:
                assert time.monotonic() < deadline
                time.sleep(0.005)
            try:
                with ServiceClient(path=path) as client:
                    with pytest.raises(ServiceError,
                                       match="overloaded"):
                        client.query("uber", rows=16, cols=16,
                                     pitch_nm=71.0)
                    # stats is served ahead of the shed gate, so the
                    # ops surface stays reachable under load.
                    stats = client.query("stats")["result"]
            finally:
                release.set()
                thread.join(timeout=30.0)
            assert stats["shed"] == 1
            assert stats["max_in_flight"] == 1
            assert holder["event"]["ok"]    # the admitted query lands

        _serve(body, path=path, max_in_flight=1)

    def test_deadline_exceeded_is_reported_not_hung(self, tmp_path,
                                                    monkeypatch):
        path = str(tmp_path / "svc.sock")
        release = threading.Event()
        real_uber = RUNNERS["uber"]

        def gated_uber(query, abort, publish):
            release.wait(30.0)
            return real_uber(query, abort, publish)

        monkeypatch.setitem(RUNNERS, "uber", gated_uber)

        def body(server):
            try:
                with ServiceClient(path=path) as client:
                    with pytest.raises(ServiceError, match="deadline"):
                        client.query("uber", deadline_s=0.2, **SMALL)
                    stats = client.query("stats")["result"]
            finally:
                release.set()
            assert stats["deadline_exceeded"] == 1
            # A missed deadline says nothing about backend health.
            assert stats["breakers"]["uber"]["state"] == "closed"

        _serve(body, path=path)

    def test_deadline_must_be_a_positive_number(self, tmp_path):
        path = str(tmp_path / "svc.sock")

        def body(server):
            with ServiceClient(path=path) as client:
                with pytest.raises(ServiceError,
                                   match="deadline_s must be"):
                    client.query("uber", deadline_s=-1, **SMALL)
                with pytest.raises(ServiceError,
                                   match="deadline_s must be"):
                    client.query("uber", deadline_s="soon", **SMALL)

        _serve(body, path=path)

    def test_breaker_opens_degrades_and_keeps_serving_cache(
            self, tmp_path, monkeypatch):
        path = str(tmp_path / "svc.sock")

        def boom(query, abort, publish):
            raise RuntimeError("kaboom")

        def body(server):
            with ServiceClient(path=path) as client:
                good = client.query("uber", **SMALL)
                assert good["ok"]

                monkeypatch.setitem(RUNNERS, "uber", boom)
                for pitch in (71.0, 72.0):
                    with pytest.raises(ServiceError,
                                       match="internal error"):
                        client.query("uber", rows=16, cols=16,
                                     pitch_nm=pitch)
                # Threshold reached: new uber work answers degraded
                # without touching the failing backend.
                with pytest.raises(ServiceError,
                                   match="circuit-broken"):
                    client.query("uber", rows=16, cols=16,
                                 pitch_nm=73.0)
                # Cache hits bypass the breaker entirely.
                again = client.query("uber", **SMALL)
                assert again["cached"]
                assert again["result"] == good["result"]

                stats = client.query("stats")["result"]
            assert stats["degraded"] == 1
            breaker = stats["breakers"]["uber"]
            assert breaker["state"] == "open"
            assert breaker["times_opened"] == 1

        _serve(body, path=path, breaker_threshold=2,
               breaker_reset=60.0)

    def test_breaker_open_serves_verified_stale_within_ttl(
            self, tmp_path, monkeypatch):
        """Degraded mode: breaker open + memo expired => the answer
        is the digest-verified stale entry tagged ``stale: true``
        with its age; past the stale TTL the op fast-fails."""
        from repro.service.results_cache import ResultsCache

        path = str(tmp_path / "svc.sock")

        class FakeClock:
            now = 1000.0

            def time(self):
                return self.now

        clock = FakeClock()
        monkeypatch.delenv("REPRO_KERNEL_CACHE", raising=False)
        cache = ResultsCache(capacity=16, clock=clock)

        def boom(query, abort, publish):
            raise RuntimeError("kaboom")

        def body(server):
            with ServiceClient(path=path) as client:
                good = client.query("uber", **SMALL)
                assert good["ok"] and not good.get("stale")

                # Age the memo past the TTL, then trip the breaker
                # with two distinct failing queries.
                clock.now += 100.0
                monkeypatch.setitem(RUNNERS, "uber", boom)
                for pitch in (71.0, 72.0):
                    with pytest.raises(ServiceError,
                                       match="internal error"):
                        client.query("uber", rows=16, cols=16,
                                     pitch_nm=pitch)

                again = client.query("uber", **SMALL)
                assert again["ok"] and again["cached"]
                assert again["stale"] is True
                assert again["degraded"] is True
                assert 99.0 <= again["age_s"] <= 101.0
                assert again["result"] == good["result"]

                # The never-computed queries have nothing stale to
                # serve: still a fast-fail.
                with pytest.raises(ServiceError,
                                   match="circuit-broken"):
                    client.query("uber", rows=16, cols=16,
                                 pitch_nm=73.0)

                # Past the stale TTL the entry is too old to vouch
                # for: fast-fail again.
                clock.now += 1000.0
                with pytest.raises(ServiceError,
                                   match="circuit-broken"):
                    client.query("uber", **SMALL)

                stats = client.query("stats")["result"]
            assert stats["stale_served"] == 1
            assert stats["memo_ttl"] == 30.0
            assert stats["stale_ttl"] == 500.0
            assert stats["cache"]["stale_hits"] == 1

        _serve(body, path=path, cache=cache, breaker_threshold=2,
               breaker_reset=60.0, memo_ttl=30.0, stale_ttl=500.0)

    def test_stats_exposes_the_hardening_surface(self, tmp_path):
        path = str(tmp_path / "svc.sock")

        def body(server):
            with ServiceClient(path=path) as client:
                stats = client.query("stats")["result"]
            assert stats["shed"] == 0
            assert stats["deadline_exceeded"] == 0
            assert stats["degraded"] == 0
            assert stats["breakers"] == {}
            assert stats["cache"]["disk_corrupt"] == 0
            # The kernel store is surfaced too (disk_fallbacks joins
            # these base counters when a disk tier is attached).
            store = stats["kernel_store"]
            assert {"entries", "hits", "misses"} <= set(store)
            assert all(isinstance(v, int) for v in store.values())

        _serve(body, path=path)


class TestDistributedSweepDrain:
    def test_drain_mid_distributed_sweep_delivers_result(
            self, tmp_path, monkeypatch):
        """SIGTERM-equivalent drain while a distributed sweep is in
        flight: the spool run finishes, the client gets its result,
        and only then does the server exit."""
        spool = str(tmp_path / "spool")
        os.makedirs(spool)
        monkeypatch.setenv(SWEEP_SPOOL_ENV, spool)
        path = str(tmp_path / "svc.sock")
        release = threading.Event()
        real_sweep = RUNNERS["sweep"]

        def gated_sweep(query, abort, publish):
            release.wait(30.0)
            return real_sweep(query, abort, publish)

        monkeypatch.setitem(RUNNERS, "sweep", gated_sweep)

        async def main():
            server = ReliabilityServer(path=path, capacity=16)
            await server.start()
            serve_task = asyncio.create_task(
                server.serve_forever(install_signals=False))

            holder = {}

            def sweep_query():
                with ServiceClient(path=path,
                                   timeout=180.0) as client:
                    holder["event"] = client.query(
                        "sweep", pitch_ratios=[3.0, 2.0],
                        patterns=["random"], eccs=["secded"],
                        rows=16, cols=16, executor="distributed",
                        jobs=1)

            thread = threading.Thread(target=sweep_query)
            thread.start()
            while server.in_flight == 0:
                await asyncio.sleep(0.005)

            server.request_stop()       # drain begins mid-sweep
            await asyncio.sleep(0.05)
            assert not serve_task.done()
            release.set()
            await asyncio.wait_for(serve_task, timeout=180.0)
            thread.join(timeout=180.0)
            assert not thread.is_alive()

            event = holder["event"]
            assert event["ok"]
            assert event["result"]["executor"] == "distributed"
            assert len(event["result"]["rows"]) == 2
            # The spool outlives the drain for the next campaign.
            assert os.path.isdir(spool)

        asyncio.run(main())


class TestCliSmoke:
    """The full `repro serve` / `repro query` process topology."""

    @pytest.fixture()
    def served(self, tmp_path):
        path = str(tmp_path / "svc.sock")
        env = dict(os.environ,
                   PYTHONPATH=os.pathsep.join(
                       [os.path.join(os.path.dirname(__file__), os.pardir,
                                     "src")]
                       + ([os.environ["PYTHONPATH"]]
                          if os.environ.get("PYTHONPATH") else [])))
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--socket", path],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env)
        deadline = time.monotonic() + 60.0
        while not os.path.exists(path):
            assert proc.poll() is None, proc.stdout.read()
            assert time.monotonic() < deadline
            time.sleep(0.05)
        try:
            yield path, proc, env
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10.0)

    def _query(self, env, path, op, params=None):
        cmd = [sys.executable, "-m", "repro.cli", "query", op,
               "--socket", path]
        if params:
            cmd += ["--params", json.dumps(params)]
        done = subprocess.run(cmd, capture_output=True, text=True,
                              env=env, timeout=120.0)
        assert done.returncode == 0, done.stdout + done.stderr
        return json.loads(done.stdout)

    def test_serve_query_sigterm_lifecycle(self, served):
        path, proc, env = served
        cold = self._query(env, path, "uber", SMALL)
        assert cold["ok"] and not cold["cached"]
        warm = self._query(env, path, "uber", SMALL)
        assert warm["cached"]
        stats = self._query(env, path, "stats")["result"]
        assert stats["cache"]["hits"] == 1
        assert stats["coalesce"]["runs_started"] == 1
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=30.0) == 0
        out = proc.stdout.read()
        assert "drained" in out
        assert not os.path.exists(path)
