"""Fleet supervisor: scaling, crash-restart, retire — then for real.

The unit half injects a scripted spool view, a fake spawner, and a
:class:`FaultClock`, so a full scale-up / crash-backoff / give-up /
retire lifecycle runs with zero real processes and zero real seconds.
The integration half is the ISSUE's acceptance demo: a dense grid
queued on a real spool, real ``repro worker`` subprocesses spawned
against it, results byte-identical to serial, fleet retired on idle.
"""

import os
import threading
import time

import pytest

from repro.errors import ResilienceWarning
from repro.resilience import FaultClock, FleetSupervisor, SpoolView
from repro.resilience.shims import ProcessSpawner
from repro.sweep.distributed import (
    SHUTDOWN_SENTINEL,
    SWEEP_SPOOL_ENV,
    DistributedBroker,
    SpoolRun,
)


def grid_point(a, b):
    return a * 10 + b


class FakeHandle:
    def __init__(self, worker_id):
        self.worker_id = worker_id
        self._alive = True
        self._code = None
        self.terminated = False

    def alive(self):
        return self._alive

    def returncode(self):
        return self._code

    def terminate(self):
        self.terminated = True
        self._alive = False
        if self._code is None:
            self._code = 0

    def wait(self, timeout=None):
        return self._code

    def crash(self, code=1):
        self._alive = False
        self._code = code

    def exit_clean(self):
        self._alive = False
        self._code = 0


class FakeSpawner:
    def __init__(self):
        self.spawned = []

    def spawn(self, spool, worker_id):
        handle = FakeHandle(worker_id)
        self.spawned.append(handle)
        return handle


class ScriptedView:
    """Replays a scripted sequence of spool states (last one sticks)."""

    def __init__(self, *states):
        self.states = list(states)

    def scan(self):
        state = (self.states.pop(0) if len(self.states) > 1
                 else self.states[0])
        return {"open_runs": state.get("open_runs", 1),
                "queued": state.get("queued", 0),
                "claimed": state.get("claimed", 0),
                "live_workers": set(state.get("live", ()))}


def _supervisor(tmp_path, view, **kwargs):
    kwargs.setdefault("spawner", FakeSpawner())
    kwargs.setdefault("clock", FaultClock())
    return FleetSupervisor(spool=str(tmp_path), view=view, **kwargs)


class TestScaling:
    def test_scales_to_demand_clamped_at_max(self, tmp_path):
        sup = _supervisor(tmp_path, ScriptedView({"queued": 10}),
                          latency_target=2.0, chunk_cost=1.0,
                          max_workers=3)
        sup.step()
        # drain time 10s against a 2s target wants 5; ceiling is 3.
        assert len(sup.handles) == 3
        assert sup.stats["spawned"] == 3
        assert sup.stats["peak_workers"] == 3

    def test_small_queue_still_gets_one_worker(self, tmp_path):
        sup = _supervisor(tmp_path, ScriptedView({"queued": 1}),
                          latency_target=30.0, chunk_cost=0.1)
        sup.step()
        assert len(sup.handles) == 1

    def test_external_workers_count_toward_capacity(self, tmp_path):
        sup = _supervisor(
            tmp_path,
            ScriptedView({"queued": 4, "live": ("ext-1", "ext-2")}),
            latency_target=1.0, chunk_cost=1.0, max_workers=8)
        sup.step()
        # Demand 4, two hand-started workers already live: spawn 2.
        assert len(sup.handles) == 2

    def test_no_spool_anywhere_is_an_error(self, monkeypatch):
        monkeypatch.delenv(SWEEP_SPOOL_ENV, raising=False)
        with pytest.raises(ValueError, match="no spool"):
            FleetSupervisor()


class TestCrashRestart:
    def test_crash_restarts_after_backoff(self, tmp_path):
        clock = FaultClock()
        sup = _supervisor(tmp_path, ScriptedView({"queued": 1}),
                          clock=clock, max_workers=1,
                          backoff_base=1.0, max_restarts=5)
        sup.step()
        handle = next(iter(sup.handles.values()))
        handle.crash(code=1)
        sup.step()
        # Reaped, restart scheduled — but the backoff gates respawn.
        assert not sup.handles
        assert sup.stats["crashes"] == 1
        assert sup.stats["restarts"] == 1
        clock.advance(10.0)
        sup.step()
        assert len(sup.handles) == 1
        assert sup.stats["spawned"] == 2

    def test_gives_up_after_max_restarts_with_warning(self, tmp_path):
        clock = FaultClock()
        sup = _supervisor(tmp_path, ScriptedView({"queued": 1}),
                          clock=clock, max_workers=1,
                          backoff_base=0.1, max_restarts=1)
        sup.step()
        next(iter(sup.handles.values())).crash()
        sup.step()                      # crash 1: restart scheduled
        clock.advance(10.0)
        sup.step()                      # respawn
        next(iter(sup.handles.values())).crash()
        with pytest.warns(ResilienceWarning, match="not respawning"):
            sup.step()                  # crash 2 > max_restarts
        clock.advance(100.0)
        sup.step()
        assert not sup.handles          # crash loop starved, not fed
        assert sup.stats["crashes"] == 2

    def test_clean_exit_resets_the_crash_ladder(self, tmp_path):
        clock = FaultClock()
        sup = _supervisor(tmp_path, ScriptedView({"queued": 1}),
                          clock=clock, max_workers=1,
                          backoff_base=0.1, max_restarts=1)
        sup.step()
        next(iter(sup.handles.values())).crash()
        sup.step()
        clock.advance(10.0)
        sup.step()
        next(iter(sup.handles.values())).exit_clean()
        sup.step()                      # self-retired, not a crash
        assert sup._crashes == 0
        assert sup.stats["crashes"] == 1


class TestRetire:
    def test_idle_grace_then_retire_to_floor(self, tmp_path):
        clock = FaultClock()
        view = ScriptedView({"queued": 6}, {"queued": 0})
        sup = _supervisor(tmp_path, view, clock=clock,
                          latency_target=1.0, chunk_cost=1.0,
                          max_workers=3, min_workers=1,
                          idle_grace=5.0)
        sup.step()                      # busy: fleet up
        assert len(sup.handles) == 3
        sup.step()                      # idle: grace starts
        assert len(sup.handles) == 3
        clock.advance(5.0)
        sup.step()                      # grace over: retire to floor
        assert len(sup.handles) == 1
        assert sup.stats["retired"] == 2

    def test_run_until_idle_winds_the_fleet_down(self, tmp_path):
        clock = FaultClock()
        view = ScriptedView({"queued": 2}, {"queued": 1},
                            {"queued": 0})
        sup = _supervisor(tmp_path, view, clock=clock,
                          latency_target=1.0, chunk_cost=1.0,
                          max_workers=2, idle_grace=0.5, poll=0.5)
        stats = sup.run(until_idle=True)
        assert not sup.handles
        assert stats["spawned"] >= 1
        assert stats["retired"] == stats["spawned"]

    def test_shutdown_sentinel_stops_the_loop(self, tmp_path):
        with open(os.path.join(str(tmp_path), SHUTDOWN_SENTINEL),
                  "w"):
            pass
        sup = _supervisor(tmp_path, ScriptedView({"queued": 5}))
        stats = sup.run()
        assert stats["steps"] == 0
        assert not sup.handles


class TestSpoolView:
    def test_scan_reduces_a_real_spool(self, tmp_path):
        run = SpoolRun.create(str(tmp_path), grid_point)
        run.enqueue(0, [{"a": 1, "b": 2}])
        run.enqueue(1, [{"a": 3, "b": 4}])
        view = SpoolView(str(tmp_path))
        assert view.scan() == {"open_runs": 0, "queued": 0,
                               "claimed": 0, "live_workers": set()}
        run.open()
        state = view.scan()
        assert state["open_runs"] == 1
        assert state["queued"] == 2 and state["claimed"] == 0

        run.claim("w1")
        run.heartbeat("w1")
        state = view.scan()
        assert state["queued"] == 1 and state["claimed"] == 1
        assert state["live_workers"] == {"w1"}

        run.mark_done()
        assert view.scan()["open_runs"] == 0

    def test_missing_spool_reads_empty(self, tmp_path):
        view = SpoolView(str(tmp_path / "nowhere"))
        assert view.scan()["queued"] == 0


@pytest.mark.integration
class TestFleetDemo:
    def test_fleet_scales_up_completes_identical_and_retires(
            self, tmp_path, monkeypatch):
        """The acceptance demo: dense grid queued, real workers
        spawned against the latency target, results byte-identical to
        serial, fleet retired once the spool drains."""
        # Spawned `repro worker` interpreters must import both the
        # library and this test module (the pickled grid function).
        here = os.path.dirname(os.path.abspath(__file__))
        src = os.path.join(here, os.pardir, "src")
        extra = ([os.environ["PYTHONPATH"]]
                 if os.environ.get("PYTHONPATH") else [])
        monkeypatch.setenv("PYTHONPATH",
                           os.pathsep.join([src, here] + extra))

        points = [{"a": a, "b": b} for a in range(4)
                  for b in range(3)]
        serial = [grid_point(**p) for p in points]

        spool = str(tmp_path / "spool")
        os.makedirs(spool)
        broker = DistributedBroker(
            grid_point, spool=spool, chunk_size=1, spawn=0,
            steal=False, heartbeat_timeout=10.0, poll=0.05,
            timeout=120.0)
        holder = {}

        def gather():
            holder["values"] = broker.run(points)

        thread = threading.Thread(target=gather)
        thread.start()
        try:
            view = SpoolView(spool)
            stop_at = time.monotonic() + 30.0
            while view.scan()["queued"] == 0:
                assert time.monotonic() < stop_at, "grid never queued"
                assert thread.is_alive()
                time.sleep(0.02)

            supervisor = FleetSupervisor(
                spool=spool, latency_target=0.5, chunk_cost=1.0,
                max_workers=2, idle_grace=0.3, poll=0.1,
                spawner=ProcessSpawner(max_idle=2.0, timeout=60.0))
            stats = supervisor.run(until_idle=True, duration=90.0)
        finally:
            thread.join(timeout=120.0)
        assert not thread.is_alive()

        assert holder["values"] == serial
        assert stats["spawned"] >= 1          # scaled up under load
        assert stats["peak_workers"] >= 1
        assert not supervisor.handles          # retired on idle
        assert broker.stats["quarantined"] == []
