"""Tests for the inter-cell model facade and the Psi coupling factor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    InterCellModel,
    coupling_factor,
    psi_threshold_pitch,
    psi_vs_pitch,
)
from repro.errors import ParameterError
from repro.stack import build_reference_stack
from repro.units import nm_to_m, oe_to_am

HC = oe_to_am(2200.0)


class TestInterCellModel:
    def test_class_table_complete(self):
        model = InterCellModel(nm_to_m(55.0))
        table = model.class_table_oe(nm_to_m(90.0))
        assert len(table) == 25
        assert table[(0, 0)] == pytest.approx(-16.0, abs=8.0)
        assert table[(4, 4)] == pytest.approx(64.0, abs=8.0)

    def test_table_monotone_in_counts(self):
        model = InterCellModel(nm_to_m(55.0))
        table = model.class_table_oe(nm_to_m(90.0))
        for ng in range(5):
            column = [table[(nd, ng)] for nd in range(5)]
            assert all(a < b for a, b in zip(column, column[1:]))
        for nd in range(5):
            row = [table[(nd, ng)] for ng in range(5)]
            assert all(a < b for a, b in zip(row, row[1:]))

    def test_steps(self):
        model = InterCellModel(nm_to_m(55.0))
        direct, diag = model.steps_oe(nm_to_m(90.0))
        assert direct == pytest.approx(15.0, abs=3.0)
        assert diag == pytest.approx(5.0, abs=2.0)

    def test_np8_sweep_size(self):
        model = InterCellModel(nm_to_m(55.0))
        sweep = model.np8_sweep_oe(nm_to_m(90.0))
        assert sweep.shape == (256,)

    def test_variation_vs_pitch_decreasing(self):
        model = InterCellModel(nm_to_m(35.0))
        pitches = np.array([nm_to_m(p) for p in (52.5, 70.0, 105.0,
                                                 200.0)])
        variations = model.variation_vs_pitch(pitches)
        assert np.all(np.diff(variations) < 0)


class TestPsi:
    def test_paper_pitch_ratios(self):
        """Paper Fig. 5: Psi ~ 1% / 2% / 7% at 3x / 2x / 1.5x eCD."""
        stack = build_reference_stack(nm_to_m(35.0))
        psi_3x = coupling_factor(stack, nm_to_m(105.0), HC)
        psi_2x = coupling_factor(stack, nm_to_m(70.0), HC)
        psi_15x = coupling_factor(stack, nm_to_m(52.5), HC)
        assert psi_3x * 100 == pytest.approx(1.0, abs=0.7)
        assert psi_2x * 100 == pytest.approx(2.0, abs=1.5)
        assert psi_15x * 100 == pytest.approx(7.0, abs=2.0)

    def test_psi_vs_pitch_monotone(self):
        pitches = np.linspace(nm_to_m(52.5), nm_to_m(200.0), 20)
        psi = psi_vs_pitch(nm_to_m(35.0), pitches, HC)
        assert np.all(np.diff(psi) < 0)

    def test_negligible_at_200nm(self):
        for ecd_nm in (20.0, 35.0, 55.0):
            psi = psi_vs_pitch(nm_to_m(ecd_nm),
                               np.array([nm_to_m(200.0)]), HC)[0]
            assert psi < 0.005

    def test_threshold_pitch_for_35nm(self):
        pitch = psi_threshold_pitch(nm_to_m(35.0), HC, psi_target=0.02)
        assert pitch * 1e9 == pytest.approx(80.0, abs=10.0)

    def test_threshold_is_a_root(self):
        ecd = nm_to_m(35.0)
        pitch = psi_threshold_pitch(ecd, HC, psi_target=0.02)
        stack = build_reference_stack(ecd)
        assert coupling_factor(stack, pitch, HC) == pytest.approx(
            0.02, rel=1e-3)

    def test_lower_target_needs_larger_pitch(self):
        ecd = nm_to_m(35.0)
        loose = psi_threshold_pitch(ecd, HC, psi_target=0.05)
        tight = psi_threshold_pitch(ecd, HC, psi_target=0.01)
        assert tight > loose

    def test_already_safe_at_lower_bound(self):
        # A huge target is satisfied everywhere: returns the lower bound.
        ecd = nm_to_m(35.0)
        pitch = psi_threshold_pitch(ecd, HC, psi_target=0.5)
        assert pitch == pytest.approx(1.5 * ecd)

    def test_unreachable_target_raises(self):
        with pytest.raises(ParameterError):
            psi_threshold_pitch(nm_to_m(35.0), HC, psi_target=1e-7)

    def test_bigger_device_higher_psi_at_fixed_pitch(self):
        # Larger FL moment -> stronger neighbor fields at equal pitch.
        pitch = np.array([nm_to_m(110.0)])
        psi_small = psi_vs_pitch(nm_to_m(20.0), pitch, HC)[0]
        psi_large = psi_vs_pitch(nm_to_m(55.0), pitch, HC)[0]
        assert psi_large > psi_small
