"""Tests for tables, ASCII plots, and exports."""

from __future__ import annotations

import csv
import json

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.reporting import ascii_plot, format_table, write_csv, write_json


class TestFormatTable:
    def test_alignment_and_rule(self):
        out = format_table(["name", "value"],
                           [("a", 1.0), ("long-name", 2.5)])
        lines = out.splitlines()
        assert len(lines) == 4
        assert set(lines[1].strip()) <= {"-", " "}
        widths = [len(line) for line in lines]
        assert len(set(widths)) == 1  # all rows aligned.

    def test_float_formatting(self):
        out = format_table(["x"], [(3.14159265,)], float_format=".2f")
        assert "3.14" in out
        assert "3.1415" not in out

    def test_row_width_mismatch(self):
        with pytest.raises(ParameterError):
            format_table(["a", "b"], [(1,)])

    def test_indent(self):
        out = format_table(["a"], [(1,)], indent="  ")
        assert all(line.startswith("  ") for line in out.splitlines())


class TestAsciiPlot:
    def test_contains_markers_and_legend(self):
        x = np.linspace(0, 10, 20)
        out = ascii_plot({"rise": (x, x), "fall": (x, 10 - x)})
        assert "*" in out
        assert "o" in out
        assert "legend" in out
        assert "rise" in out and "fall" in out

    def test_axis_labels(self):
        x = np.linspace(0, 1, 5)
        out = ascii_plot({"s": (x, x)}, x_label="pitch (nm)",
                         y_label="Psi (%)")
        assert "pitch (nm)" in out
        assert "Psi (%)" in out

    def test_log_scale(self):
        x = np.linspace(1, 10, 10)
        out = ascii_plot({"s": (x, 10.0 ** x)}, logy=True)
        assert "(log10)" in out

    def test_non_finite_values_skipped(self):
        x = np.array([0.0, 1.0, 2.0])
        y = np.array([1.0, np.inf, 3.0])
        out = ascii_plot({"s": (x, y)})
        assert "*" in out

    def test_all_nan_rejected(self):
        x = np.array([0.0, 1.0])
        y = np.array([np.nan, np.nan])
        with pytest.raises(ParameterError):
            ascii_plot({"s": (x, y)})

    def test_empty_series_rejected(self):
        with pytest.raises(ParameterError):
            ascii_plot({})

    def test_too_small_plot_rejected(self):
        x = np.array([0.0, 1.0])
        with pytest.raises(ParameterError):
            ascii_plot({"s": (x, x)}, width=5, height=3)

    def test_constant_series_handled(self):
        x = np.array([0.0, 1.0, 2.0])
        y = np.zeros(3)
        out = ascii_plot({"flat": (x, y)})
        assert "*" in out


class TestExport:
    def test_csv_roundtrip(self, tmp_path):
        path = tmp_path / "sub" / "table.csv"
        write_csv(str(path), ["a", "b"], [(1, 2.5), (3, 4.5)])
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["a", "b"]
        assert rows[1] == ["1", "2.5"]

    def test_csv_row_mismatch(self, tmp_path):
        with pytest.raises(ParameterError):
            write_csv(str(tmp_path / "t.csv"), ["a", "b"], [(1,)])

    def test_json_handles_numpy(self, tmp_path):
        path = tmp_path / "out.json"
        payload = {
            "array": np.array([1.0, 2.0]),
            "scalar": np.float64(3.5),
            "nested": {"ints": np.arange(3)},
            "tuple": (np.int32(1), 2),
        }
        write_json(str(path), payload)
        with open(path) as handle:
            loaded = json.load(handle)
        assert loaded["array"] == [1.0, 2.0]
        assert loaded["scalar"] == 3.5
        assert loaded["nested"]["ints"] == [0, 1, 2]
        assert loaded["tuple"] == [1, 2]
