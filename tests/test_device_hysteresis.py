"""Tests for the stochastic R-H loop simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.device import RHLoopSimulator, SweepProtocol
from repro.errors import MeasurementError, ParameterError
from repro.units import am_to_oe, oe_to_am


def make_simulator(hz_stray_oe=-300.0, delta0=100.0, hk_oe=3800.0,
                   n_points=600):
    protocol = SweepProtocol(h_max=oe_to_am(3000.0), n_points=n_points)
    return RHLoopSimulator(
        delta0=delta0, hk=oe_to_am(hk_oe), rp=1900.0, rap=4100.0,
        hz_stray=oe_to_am(hz_stray_oe), protocol=protocol)


class TestSweepProtocol:
    def test_path_shape(self):
        protocol = SweepProtocol(h_max=oe_to_am(3000.0), n_points=1000)
        fields = protocol.field_points()
        assert fields.shape == (1000,)
        assert fields[0] == pytest.approx(0.0)
        assert fields.max() == pytest.approx(oe_to_am(3000.0), rel=0.01)
        assert fields.min() == pytest.approx(-oe_to_am(3000.0), rel=0.01)
        assert fields[-1] == pytest.approx(0.0, abs=1.0)

    def test_ramp_order(self):
        fields = SweepProtocol(h_max=1e5, n_points=400).field_points()
        peak = int(np.argmax(fields))
        trough = int(np.argmin(fields))
        assert peak < trough  # up first, then through negative.


class TestLoopSimulation:
    def test_complete_cycle(self):
        loop = make_simulator().simulate(rng=7)
        assert loop.hsw_p is not None and loop.hsw_p > 0
        assert loop.hsw_n is not None and loop.hsw_n < 0
        assert loop.rap > loop.rp

    def test_offset_recovers_stray_field(self):
        stray_oe = -275.0
        sim = make_simulator(hz_stray_oe=stray_oe)
        recovered = []
        rng = np.random.default_rng(11)
        for _ in range(8):
            loop = sim.simulate(rng=rng)
            recovered.append(am_to_oe(loop.stray_field))
        assert np.mean(recovered) == pytest.approx(stray_oe, abs=30.0)

    def test_offset_sign_matches_paper(self):
        # Negative stray field => loop offset to the positive side.
        loop = make_simulator(hz_stray_oe=-300.0).simulate(rng=3)
        assert am_to_oe(loop.offset_field) > 0

    def test_coercivity_positive_and_below_hk(self):
        loop = make_simulator().simulate(rng=5)
        hc_oe = am_to_oe(loop.coercivity)
        assert 500.0 < hc_oe < 3800.0

    def test_switching_stochastic_across_cycles(self):
        sim = make_simulator()
        rng = np.random.default_rng(13)
        values = {round(sim.simulate(rng=rng).hsw_p) for _ in range(12)}
        assert len(values) > 1  # Hsw_p varies cycle to cycle.

    def test_higher_delta0_higher_coercivity(self):
        soft = make_simulator(delta0=40.0).simulate(rng=21)
        hard = make_simulator(delta0=140.0).simulate(rng=21)
        assert hard.coercivity > soft.coercivity

    def test_resistance_levels(self):
        loop = make_simulator().simulate(rng=9)
        assert set(np.unique(loop.resistances)) == {1900.0, 4100.0}

    def test_incomplete_loop_raises_on_extraction(self):
        # An enormous barrier never switches within the sweep.
        sim = make_simulator(delta0=100.0, hk_oe=50000.0)
        loop = sim.simulate(rng=1)
        with pytest.raises(MeasurementError):
            _ = loop.coercivity

    def test_validation(self):
        protocol = SweepProtocol(h_max=1e5)
        with pytest.raises(ParameterError):
            RHLoopSimulator(delta0=45.0, hk=3e5, rp=2000.0, rap=1000.0,
                            protocol=protocol)
        with pytest.raises(ParameterError):
            RHLoopSimulator(delta0=45.0, hk=3e5, rp=2000.0, rap=4000.0,
                            protocol=None)


class TestQuantiles:
    def test_median_matches_monte_carlo(self):
        sim = make_simulator()
        median = sim.switching_field_quantile("AP", 0.5)
        rng = np.random.default_rng(17)
        samples = [sim.simulate(rng=rng).hsw_p for _ in range(30)]
        assert np.median(samples) == pytest.approx(
            median, abs=oe_to_am(120.0))

    def test_quantiles_ordered(self):
        sim = make_simulator()
        q25 = sim.switching_field_quantile("AP", 0.25)
        q75 = sim.switching_field_quantile("AP", 0.75)
        assert q25 < q75

    def test_p_branch_negative(self):
        sim = make_simulator()
        median_n = sim.switching_field_quantile("P", 0.5)
        assert median_n < 0

    def test_unreachable_quantile(self):
        sim = make_simulator(delta0=100.0, hk_oe=50000.0)
        with pytest.raises(MeasurementError):
            sim.switching_field_quantile("AP", 0.5)
