"""Cross-module integration tests: full paper workflows end to end."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    IntraCellModel,
    MTJDevice,
    MTJState,
    PAPER_EVAL_DEVICE,
    VictimAnalysis,
    coupling_factor,
    fit_effective_moments,
    psi_threshold_pitch,
)
from repro.arrays.pattern import ALL_P
from repro.characterization import (
    RHMeasurement,
    fit_hk_delta0,
    switching_probability_curve,
)
from repro.core.inter import InterCellModel
from repro.experiments.data import (
    synthetic_intra_dataset,
    wafer_device_parameters,
)
from repro.units import am_to_oe, nm_to_m, oe_to_am

pytestmark = pytest.mark.integration


class TestCalibrateThenExtrapolate:
    """The paper's core workflow: Section III -> IV-A -> IV-B -> V."""

    def test_full_chain(self):
        # 1. Measure (synthetic silicon) and calibrate the intra model.
        dataset = synthetic_intra_dataset()
        ecds, hz_mean, _ = dataset.as_arrays()
        calibration = fit_effective_moments(ecds, hz_mean)
        assert calibration.rmse_oe < 15.0

        # 2. The calibrated model reproduces the eval-device anchor.
        intra = IntraCellModel(stack_builder=calibration.stack_builder)
        hz35 = intra.hz_at_center_oe(nm_to_m(35.0))
        assert hz35 == pytest.approx(-325.0, abs=40.0)

        # 3. Extrapolate to the 3x3 array and check the coupling anchors.
        inter = InterCellModel(nm_to_m(55.0),
                               stack_builder=calibration.stack_builder)
        lo, hi = inter.extremes_oe(nm_to_m(90.0))
        assert lo == pytest.approx(-16.0, abs=10.0)
        assert hi == pytest.approx(64.0, abs=10.0)

        # 4. Psi threshold: around 80 nm pitch for the 35 nm device.
        pitch = psi_threshold_pitch(
            nm_to_m(35.0), oe_to_am(2200.0), psi_target=0.02,
            stack_builder=calibration.stack_builder)
        assert pitch * 1e9 == pytest.approx(80.0, abs=12.0)


class TestMeasurementConsistency:
    """Device model and measurement emulation must agree with each other."""

    def test_loop_offset_equals_model_intra_field(self):
        device = MTJDevice(wafer_device_parameters(nm_to_m(90.0)))
        stats = RHMeasurement(device).run(n_cycles=10, rng=31)
        assert am_to_oe(stats.stray_field) == pytest.approx(
            device.intra_stray_field_oe(), abs=40.0)

    def test_hk_delta0_extraction_matches_injected(self):
        device = MTJDevice(wafer_device_parameters(nm_to_m(55.0)))
        fields = np.linspace(oe_to_am(1200.0), oe_to_am(3800.0), 30)
        _, probs = switching_probability_curve(
            device, fields, n_cycles=600, rng=17)
        fit = fit_hk_delta0(fields, probs, t_pulse=1e-3,
                            hz_stray=device.intra_stray_field())
        assert fit.hk == pytest.approx(device.params.hk, rel=0.08)
        assert fit.delta0 == pytest.approx(device.params.delta0,
                                           rel=0.25)


class TestVictimWorstCaseStory:
    """Section V's engineering conclusions, told through the library."""

    def test_write_margin_worst_case_is_np0(self, eval_device):
        victim = VictimAnalysis(eval_device, pitch=52.5e-9)
        times = {
            np8: victim.switching_time(
                0.85, __import__(
                    "repro.arrays.pattern", fromlist=["NeighborhoodPattern"]
                ).NeighborhoodPattern.from_int(np8))
            for np8 in (0, 128, 255)
        }
        assert times[0] > times[128] > times[255]

    def test_retention_worst_case_is_p_np0(self, eval_device):
        victim = VictimAnalysis(eval_device, pitch=52.5e-9)
        _, state, pattern = victim.worst_case_delta()
        assert state is MTJState.P
        assert pattern.to_int() == 0

    def test_psi_2pct_pitch_beats_denser_design(self, eval_device):
        """At Psi=2% the Ic spread is marginal; at 1.5x eCD it is not."""
        device = eval_device
        safe = VictimAnalysis(device, pitch=80e-9)
        dense = VictimAnalysis(device, pitch=52.5e-9)
        safe_spread = np.subtract(*reversed(safe.ic_spread("AP->P")))
        dense_spread = np.subtract(*reversed(dense.ic_spread("AP->P")))
        assert dense_spread > 2.5 * safe_spread

    def test_density_tradeoff_quantified(self, eval_device):
        from repro.arrays import areal_density_gbit_per_mm2
        pitch_safe = psi_threshold_pitch(
            eval_device.params.ecd, eval_device.params.hc,
            psi_target=0.02)
        density_safe = areal_density_gbit_per_mm2(pitch_safe)
        density_aggressive = areal_density_gbit_per_mm2(
            1.5 * eval_device.params.ecd)
        # Pushing from Psi=2% to pitch=1.5x eCD buys >2x density...
        assert density_aggressive > 2.0 * density_safe
        # ...at the cost of Psi ~ 7%.
        psi = coupling_factor(eval_device.stack,
                              1.5 * eval_device.params.ecd,
                              eval_device.params.hc)
        assert psi > 0.05


class TestLLGAgainstSun:
    """The LLG substrate corroborates the analytical switching model."""

    @pytest.mark.slow
    def test_tw_same_order_of_magnitude(self, eval_device):
        from repro.llg import MacrospinParameters, SwitchingSimulation
        params = MacrospinParameters.from_device(eval_device)
        vp = 1.0
        h = eval_device.intra_stray_field()
        current = eval_device.params.resistance.current(
            eval_device.params.ecd, "AP", vp)
        tw_sun = eval_device.switching_time(vp, h)
        result = SwitchingSimulation(params, current=current,
                                     hz_applied=h).run(
            n_runs=32, max_time=100e-9, rng=5)
        assert result.switched_fraction > 0.9
        ratio = result.mean_time / tw_sun
        assert 0.1 < ratio < 10.0
