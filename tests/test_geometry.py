"""Tests for layer/pillar geometry."""

from __future__ import annotations

import math

import pytest

from repro.errors import GeometryError
from repro.geometry import (
    Layer,
    LayerRole,
    PillarGeometry,
    check_no_overlap,
)
from repro.materials import COFEB_FREE, MGO


def make_layer(z_bottom=-1e-9, z_top=1e-9, role=LayerRole.FREE,
               material=COFEB_FREE, direction=+1):
    return Layer(role=role, material=material, z_bottom=z_bottom,
                 z_top=z_top, direction=direction)


class TestLayer:
    def test_thickness_and_center(self):
        layer = make_layer(-2e-9, 0.0)
        assert layer.thickness == pytest.approx(2e-9)
        assert layer.z_center == pytest.approx(-1e-9)

    def test_inverted_extent_rejected(self):
        with pytest.raises(GeometryError):
            make_layer(1e-9, -1e-9)

    def test_bad_direction_rejected(self):
        with pytest.raises(GeometryError):
            make_layer(direction=2)

    def test_nonmagnetic_with_direction_rejected(self):
        with pytest.raises(GeometryError):
            make_layer(role=LayerRole.BARRIER, material=MGO, direction=1)

    def test_magnetic_role_needs_direction(self):
        with pytest.raises(GeometryError):
            make_layer(direction=0)

    def test_moment_per_area_signed(self):
        up = make_layer(direction=+1)
        down = make_layer(direction=-1)
        assert up.moment_per_area == pytest.approx(
            COFEB_FREE.ms * up.thickness)
        assert down.moment_per_area == pytest.approx(
            -up.moment_per_area)

    def test_barrier_has_zero_moment(self):
        barrier = make_layer(role=LayerRole.BARRIER, material=MGO,
                             direction=0)
        assert barrier.moment_per_area == 0.0
        assert not barrier.is_magnetic_role


class TestPillar:
    def test_radius_and_area(self):
        pillar = PillarGeometry(ecd=50e-9)
        assert pillar.radius == pytest.approx(25e-9)
        assert pillar.area == pytest.approx(math.pi * 25e-9 ** 2)

    def test_rejects_non_positive(self):
        with pytest.raises(Exception):
            PillarGeometry(ecd=0.0)


class TestOverlap:
    def test_accepts_disjoint(self):
        a = make_layer(-3e-9, -2e-9)
        b = make_layer(-2e-9, 0.0)
        ordered = check_no_overlap([b, a])
        assert ordered[0] is a

    def test_rejects_overlap(self):
        a = make_layer(-3e-9, -1e-9)
        b = make_layer(-2e-9, 0.0)
        with pytest.raises(GeometryError, match="overlap"):
            check_no_overlap([a, b])

    def test_touching_layers_ok(self):
        a = make_layer(-2e-9, -1e-9)
        b = make_layer(-1e-9, 0.0)
        check_no_overlap([a, b])
