"""Tests for the critical current (Eq. 2) and Sun's tw model (Eq. 3-4)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.constants import ROOM_TEMPERATURE
from repro.device import (
    ResistanceModel,
    SunModel,
    calibrate_eta,
    calibrate_polarization,
    critical_current,
    intrinsic_critical_current,
)
from repro.errors import ParameterError
from repro.units import oe_to_am


@pytest.fixture
def eval_resistance():
    return ResistanceModel(ra=6.4e-12, tmr0=1.5, v_half=0.55)


@pytest.fixture
def sun(eval_resistance):
    area = math.pi * (17.5e-9) ** 2
    return SunModel(ms=1.1e6, fl_volume=area * 2e-9, polarization=0.30,
                    delta0=45.5, resistance_model=eval_resistance,
                    ecd=35e-9)


class TestCriticalCurrent:
    def test_eta_calibration_roundtrip(self):
        eta = calibrate_eta(57.2e-6, 0.015, 45.5, ROOM_TEMPERATURE)
        assert intrinsic_critical_current(
            0.015, eta, 45.5, ROOM_TEMPERATURE) == pytest.approx(57.2e-6)

    def test_eta_is_physical(self):
        eta = calibrate_eta(57.2e-6, 0.015, 45.5, ROOM_TEMPERATURE)
        assert 0.1 < eta < 0.6

    def test_paper_seven_percent_shift(self):
        # h = -325 Oe / 4646.8 Oe = -0.07: AP->P goes 7% up, P->AP 7% down.
        h = -325.0 / 4646.8
        ic0 = 57.2e-6
        up = critical_current(ic0, h, "AP->P")
        down = critical_current(ic0, h, "P->AP")
        assert up == pytest.approx(61.2e-6, rel=0.01)
        assert down == pytest.approx(53.2e-6, rel=0.01)
        assert up + down == pytest.approx(2 * ic0, rel=1e-12)

    def test_zero_field_symmetric(self):
        assert critical_current(57.2e-6, 0.0, "AP->P") == pytest.approx(
            critical_current(57.2e-6, 0.0, "P->AP"))

    def test_direction_validation(self):
        with pytest.raises(ParameterError):
            critical_current(57.2e-6, 0.0, "sideways")

    def test_ic_scales_with_damping(self):
        low = intrinsic_critical_current(0.01, 0.3, 45.5, 300.0)
        high = intrinsic_critical_current(0.02, 0.3, 45.5, 300.0)
        assert high == pytest.approx(2 * low)


class TestSunModel:
    def test_rate_linear_in_overdrive(self, sun):
        ic = 61.7e-6
        tw1 = sun.switching_time(0.9, ic)
        tw2 = sun.switching_time(1.1, ic)
        im1 = sun.overdrive_current(0.9, ic)
        im2 = sun.overdrive_current(1.1, ic)
        assert (1 / tw1) / (1 / tw2) == pytest.approx(im1 / im2,
                                                      rel=1e-9)

    def test_below_threshold_infinite(self, sun):
        # A tiny voltage cannot beat Ic.
        assert sun.switching_time(0.05, 61.7e-6) == math.inf

    def test_tw_monotone_decreasing_in_voltage(self, sun):
        voltages = np.linspace(0.75, 1.2, 10)
        times = [sun.switching_time(v, 61.7e-6) for v in voltages]
        finite = [t for t in times if math.isfinite(t)]
        assert all(a > b for a, b in zip(finite, finite[1:]))

    def test_stray_field_slows_ap_p(self, sun):
        # Larger Ic (from negative stray field) means longer tw.
        assert (sun.switching_time(0.9, 61.7e-6)
                > sun.switching_time(0.9, 57.2e-6))

    def test_nanosecond_scale(self, sun):
        tw = sun.switching_time(0.9, 61.7e-6)
        assert 2e-9 < tw < 40e-9

    def test_p_to_ap_faster_at_same_voltage(self, sun):
        # The P branch has lower resistance -> more current -> faster.
        tw_ap_p = sun.switching_time(0.9, 57.2e-6, initial_state="AP")
        tw_p_ap = sun.switching_time(0.9, 57.2e-6, initial_state="P")
        assert tw_p_ap < tw_ap_p

    def test_moment(self, sun):
        assert sun.moment == pytest.approx(sun.ms * sun.fl_volume)


class TestPolarizationCalibration:
    def test_roundtrip(self, eval_resistance):
        area = math.pi * (17.5e-9) ** 2
        target = 10e-9
        pol = calibrate_polarization(
            target, 0.9, 61.7e-6, 1.1e6, area * 2e-9, 45.5,
            eval_resistance, 35e-9)
        model = SunModel(ms=1.1e6, fl_volume=area * 2e-9,
                         polarization=pol, delta0=45.5,
                         resistance_model=eval_resistance, ecd=35e-9)
        assert model.switching_time(0.9, 61.7e-6) == pytest.approx(
            target, rel=1e-9)

    def test_below_threshold_rejected(self, eval_resistance):
        area = math.pi * (17.5e-9) ** 2
        with pytest.raises(ParameterError):
            calibrate_polarization(10e-9, 0.05, 61.7e-6, 1.1e6,
                                   area * 2e-9, 45.5, eval_resistance,
                                   35e-9)

    def test_unreachable_target_rejected(self, eval_resistance):
        area = math.pi * (17.5e-9) ** 2
        with pytest.raises(ParameterError):
            calibrate_polarization(1e-15, 0.9, 61.7e-6, 1.1e6,
                                   area * 2e-9, 45.5, eval_resistance,
                                   35e-9)
