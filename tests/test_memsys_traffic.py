"""Tests for the workload generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arrays.pattern import checkerboard, solid
from repro.errors import ParameterError
from repro.memsys.traffic import (
    HotSpotWorkload,
    SequentialWorkload,
    StressPatternWorkload,
    TrafficBatch,
    WORKLOADS,
    Workload,
    make_workload,
)

N_WORDS = 56


class TestRegistry:
    def test_all_names_construct(self):
        for name in WORKLOADS:
            wl = make_workload(name)
            batch = wl.batch(100, N_WORDS, np.random.default_rng(0))
            assert len(batch) == 100
            assert batch.word.min() >= 0
            assert batch.word.max() < N_WORDS

    def test_unknown_name(self):
        with pytest.raises(ParameterError):
            make_workload("adversarial")

    def test_read_fraction_override(self):
        wl = make_workload("random", read_fraction=1.0)
        batch = wl.batch(200, N_WORDS, np.random.default_rng(0))
        assert not batch.is_write.any()


class TestDeterminism:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_same_seed_same_stream(self, name):
        batches = []
        for _ in range(2):
            wl = make_workload(name)
            rng = np.random.default_rng(42)
            wl.initial_bits(16, 16, rng)
            batches.append(wl.batch(500, N_WORDS, rng))
        assert np.array_equal(batches[0].word, batches[1].word)
        assert np.array_equal(batches[0].is_write, batches[1].is_write)


class TestMixes:
    def test_read_heavy_vs_write_heavy(self):
        rng = np.random.default_rng(1)
        heavy_r = make_workload("read-heavy").batch(4000, N_WORDS, rng)
        heavy_w = make_workload("write-heavy").batch(4000, N_WORDS, rng)
        assert (~heavy_r.is_write).mean() > 0.85
        assert heavy_w.is_write.mean() > 0.85


class TestSequential:
    def test_stride_wraps(self):
        wl = SequentialWorkload(stride=3)
        rng = np.random.default_rng(0)
        a = wl.batch(N_WORDS, N_WORDS, rng)
        expected = (3 * np.arange(N_WORDS)) % N_WORDS
        assert np.array_equal(a.word, expected)
        b = wl.batch(4, N_WORDS, rng)
        assert np.array_equal(b.word, (3 * (N_WORDS + np.arange(4)))
                              % N_WORDS)


class TestHotSpot:
    def test_concentration(self):
        wl = HotSpotWorkload(hot_fraction=0.9, axis="row")
        rng = np.random.default_rng(5)
        batch = wl.batch(5000, N_WORDS, rng)
        hot = set(wl.hot_words(N_WORDS).tolist())
        frac_hot = np.mean([w in hot for w in batch.word.tolist()])
        assert frac_hot > 0.85
        assert len(hot) < N_WORDS / 4

    def test_axis_validation(self):
        with pytest.raises(ParameterError):
            HotSpotWorkload(axis="diagonal")

    def test_bound_hot_row_words_hold_top_band_cells(self):
        from repro.arrays.layout import ArrayLayout
        from repro.memsys.controller import WordMap
        words = WordMap(ArrayLayout(pitch=70e-9, rows=64, cols=64), 72)
        wl = HotSpotWorkload(axis="row").bind(words)
        hot = wl.hot_words(words.n_words)
        band_cells = set(range((64 // 8) * 64))
        for w in hot.tolist():
            assert band_cells.intersection(words.cells[w].tolist())
        # Words outside the hot set hold no top-band cell.
        for w in set(range(words.n_words)) - set(hot.tolist()):
            assert not band_cells.intersection(words.cells[w].tolist())

    def test_bound_hot_col_words_hold_left_band_cells(self):
        from repro.arrays.layout import ArrayLayout
        from repro.memsys.controller import WordMap
        words = WordMap(ArrayLayout(pitch=70e-9, rows=64, cols=64), 72)
        wl = HotSpotWorkload(axis="col").bind(words)
        hot = wl.hot_words(words.n_words)
        left = {r * 64 + c for r in range(64) for c in range(64 // 8)}
        for w in hot.tolist():
            assert left.intersection(words.cells[w].tolist())


class TestStressPatterns:
    def test_initial_bits_reuse_arrays_pattern(self):
        rng = np.random.default_rng(0)
        cb = StressPatternWorkload("checkerboard")
        assert np.array_equal(cb.initial_bits(8, 8, rng),
                              checkerboard(8, 8).bits)
        s1 = StressPatternWorkload("solid1")
        assert np.array_equal(s1.initial_bits(8, 8, rng),
                              solid(8, 8, bit=1).bits)

    def test_background_data_matches_pattern(self):
        from repro.arrays.layout import ArrayLayout
        from repro.memsys.controller import WordMap
        from repro.memsys.ecc import HammingSECDED
        ecc = HammingSECDED(64)
        layout = ArrayLayout(pitch=70e-9, rows=16, cols=16)
        words = WordMap(layout, ecc.n_code)
        wl = StressPatternWorkload("checkerboard")
        bits = wl.initial_bits(16, 16, np.random.default_rng(0))
        data = wl.background_data(np.array([0, 1]), words,
                                  ecc.data_positions)
        flat = bits.reshape(-1)
        for i, w in enumerate((0, 1)):
            expected = flat[words.cells[w][ecc.data_positions]]
            assert np.array_equal(data[i], expected)

    def test_requires_initialization(self):
        from repro.arrays.layout import ArrayLayout
        from repro.memsys.controller import WordMap
        wl = StressPatternWorkload("solid0")
        words = WordMap(ArrayLayout(pitch=70e-9, rows=16, cols=16), 72)
        with pytest.raises(ParameterError):
            wl.background_data(np.array([0]), words, np.arange(64))

    def test_unknown_pattern(self):
        with pytest.raises(ParameterError):
            StressPatternWorkload("gradient")


class TestBatchValidation:
    def test_shape_mismatch(self):
        with pytest.raises(ParameterError):
            TrafficBatch(word=np.arange(4), is_write=np.zeros(3, bool))

    def test_base_workload_bounds(self):
        with pytest.raises(Exception):
            Workload(read_fraction=1.5)
