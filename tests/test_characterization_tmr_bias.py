"""Tests for the TMR-vs-bias measurement and V_half extraction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.characterization import fit_tmr_bias, measure_rv_curves
from repro.errors import CalibrationError, ParameterError


@pytest.fixture
def rv_data(eval_device):
    voltages = np.linspace(0.0, 1.2, 25)
    r_p, r_ap = measure_rv_curves(eval_device, voltages, rng=4,
                                  noise=0.003)
    return voltages, r_p, r_ap


class TestMeasurement:
    def test_shapes(self, rv_data):
        voltages, r_p, r_ap = rv_data
        assert r_p.shape == voltages.shape
        assert r_ap.shape == voltages.shape

    def test_ap_above_p_everywhere(self, rv_data):
        _, r_p, r_ap = rv_data
        assert np.all(r_ap > r_p)

    def test_ap_rolls_off(self, rv_data):
        voltages, _, r_ap = rv_data
        assert r_ap[0] > r_ap[-1]

    def test_zero_noise_exact(self, eval_device):
        voltages = np.array([0.0, 0.5, 1.0])
        r_p, r_ap = measure_rv_curves(eval_device, voltages, rng=1,
                                      noise=0.0)
        params = eval_device.params
        assert r_ap[1] == pytest.approx(
            params.resistance.rap(params.ecd, 0.5))

    def test_negative_bias_rejected(self, eval_device):
        with pytest.raises(ParameterError):
            measure_rv_curves(eval_device, np.array([-0.1, 0.5]))

    def test_rejects_non_device(self):
        with pytest.raises(ParameterError):
            measure_rv_curves("device", np.array([0.1]))


class TestFit:
    def test_recovers_injected_parameters(self, eval_device, rv_data):
        voltages, r_p, r_ap = rv_data
        fit = fit_tmr_bias(voltages, r_p, r_ap)
        resistance = eval_device.params.resistance
        assert fit.tmr0 == pytest.approx(resistance.tmr0, rel=0.05)
        assert fit.v_half == pytest.approx(resistance.v_half, rel=0.08)
        assert fit.rmse < 0.05

    def test_noisier_data_still_converges(self, eval_device):
        voltages = np.linspace(0.0, 1.2, 40)
        r_p, r_ap = measure_rv_curves(eval_device, voltages, rng=9,
                                      noise=0.02)
        fit = fit_tmr_bias(voltages, r_p, r_ap)
        assert fit.v_half == pytest.approx(
            eval_device.params.resistance.v_half, rel=0.3)

    def test_degenerate_bias_rejected(self):
        voltages = np.full(5, 0.5)
        with pytest.raises(CalibrationError):
            fit_tmr_bias(voltages, np.full(5, 1e3), np.full(5, 2e3))

    def test_too_few_points_rejected(self):
        with pytest.raises(CalibrationError):
            fit_tmr_bias(np.array([0.0, 0.5]), np.array([1e3, 1e3]),
                         np.array([2e3, 1.9e3]))

    def test_negative_tmr_rejected(self):
        voltages = np.linspace(0.0, 1.0, 5)
        with pytest.raises(CalibrationError):
            fit_tmr_bias(voltages, np.full(5, 2e3), np.full(5, 1e3))
