"""Tests for NP8 neighborhood patterns and array data patterns."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.arrays import (
    DataPattern,
    NeighborhoodPattern,
    all_patterns,
    checkerboard,
    pattern_classes,
    solid,
)
from repro.arrays.pattern import ALL_AP, ALL_P, random_pattern
from repro.device import MTJState
from repro.errors import ParameterError

NP8_INTS = st.integers(min_value=0, max_value=255)


class TestNeighborhoodPattern:
    @given(NP8_INTS)
    def test_int_roundtrip(self, value):
        assert NeighborhoodPattern.from_int(value).to_int() == value

    def test_bit_order_is_little_endian(self):
        pattern = NeighborhoodPattern.from_int(0b00000001)
        assert pattern.bits[0] == 1
        assert sum(pattern.bits) == 1

    def test_counts(self):
        pattern = NeighborhoodPattern((1, 1, 0, 0, 1, 0, 0, 0))
        assert pattern.direct_ones == 2
        assert pattern.diagonal_ones == 1
        assert pattern.class_key == (2, 1)

    def test_extremes(self):
        assert ALL_P.to_int() == 0
        assert ALL_AP.to_int() == 255
        assert ALL_P.direct_ones == 0
        assert ALL_AP.diagonal_ones == 4

    def test_states_and_signs(self):
        pattern = NeighborhoodPattern((0, 1, 0, 1, 0, 1, 0, 1))
        states = pattern.states()
        assert states[0] is MTJState.P
        assert states[1] is MTJState.AP
        np.testing.assert_allclose(
            pattern.signs(), [1, -1, 1, -1, 1, -1, 1, -1])

    @given(NP8_INTS)
    def test_inversion_involution(self, value):
        pattern = NeighborhoodPattern.from_int(value)
        assert pattern.inverted().inverted() == pattern

    @given(NP8_INTS)
    def test_inversion_complements_counts(self, value):
        pattern = NeighborhoodPattern.from_int(value)
        inv = pattern.inverted()
        assert pattern.direct_ones + inv.direct_ones == 4
        assert pattern.diagonal_ones + inv.diagonal_ones == 4

    def test_all_patterns_complete(self):
        patterns = all_patterns()
        assert len(patterns) == 256
        assert len({p.to_int() for p in patterns}) == 256

    def test_class_count(self):
        classes = pattern_classes()
        assert len(classes) == 25
        for (nd, ng), rep in classes.items():
            assert rep.direct_ones == nd
            assert rep.diagonal_ones == ng

    def test_validation(self):
        with pytest.raises(ParameterError):
            NeighborhoodPattern((1, 0, 1))
        with pytest.raises(ParameterError):
            NeighborhoodPattern((1, 0, 1, 0, 2, 0, 0, 0))
        with pytest.raises(ParameterError):
            NeighborhoodPattern.from_int(256)


class TestDataPattern:
    def test_solid(self):
        zeros = solid(4, 4, 0)
        ones = solid(4, 4, 1)
        assert zeros.bits.sum() == 0
        assert ones.bits.sum() == 16
        assert zeros.state(1, 1) is MTJState.P
        assert ones.state(1, 1) is MTJState.AP

    def test_checkerboard_alternates(self):
        board = checkerboard(4, 4)
        assert board.bit(0, 0) != board.bit(0, 1)
        assert board.bit(0, 0) != board.bit(1, 0)
        assert board.bit(0, 0) == board.bit(1, 1)

    def test_checkerboard_phase(self):
        assert checkerboard(4, 4, 0).bit(0, 0) == 0
        assert checkerboard(4, 4, 1).bit(0, 0) == 1

    def test_neighborhood_of_solid(self):
        np8 = solid(3, 3, 1).neighborhood_of(1, 1)
        assert np8.to_int() == 255

    def test_neighborhood_of_checkerboard(self):
        # Around a checkerboard center: all direct neighbors differ from
        # the center, all diagonals match it.
        board = checkerboard(3, 3)
        np8 = board.neighborhood_of(1, 1)
        center = board.bit(1, 1)
        assert np8.direct_ones == (4 if center == 0 else 0)
        assert np8.diagonal_ones == (0 if center == 0 else 4)

    def test_border_rejected(self):
        with pytest.raises(ParameterError):
            solid(3, 3, 0).neighborhood_of(0, 1)

    def test_random_pattern_probability(self):
        pattern = random_pattern(40, 40, rng=3, p_one=0.25)
        fraction = pattern.bits.mean()
        assert 0.15 < fraction < 0.35

    def test_non_binary_rejected(self):
        with pytest.raises(ParameterError):
            DataPattern(np.array([[0, 2], [1, 0]]))
