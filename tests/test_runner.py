"""Tests for the experiments runner CLI plumbing."""

from __future__ import annotations

import os

import pytest

from repro.experiments import runner
from repro.experiments.base import Comparison, ExperimentResult

pytestmark = pytest.mark.integration


def make_result(passed=True):
    return ExperimentResult(
        experiment_id="figX",
        title="synthetic",
        headers=["a", "b"],
        rows=[(1, 2.0), (3, 4.0)],
        series={"s": ([0.0, 1.0], [1.0, 2.0])},
        comparisons=[Comparison("m", 1.0, 1.0, passed, "n")],
    )


class TestRender:
    def test_render_contains_sections(self):
        text = runner.render(make_result())
        assert "figX" in text
        assert "paper vs measured" in text
        assert "legend" in text  # the ascii plot rendered.

    def test_render_truncates_rows(self):
        result = make_result()
        result.rows = [(i, float(i)) for i in range(30)]
        text = runner.render(result, max_rows=5)
        assert "25 more rows" in text

    def test_render_without_plot(self):
        text = runner.render(make_result(), plot=False)
        assert "legend" not in text


class TestExportAndStructure:
    def test_export_files(self, tmp_path):
        runner.export(make_result(), str(tmp_path))
        assert (tmp_path / "figX.csv").exists()
        assert (tmp_path / "figX_comparison.csv").exists()
        assert (tmp_path / "figX_series.json").exists()

    def test_experiments_registry_complete(self):
        assert list(runner.EXPERIMENTS) == [
            "fig2a", "fig2b", "fig3c", "fig3d", "fig4a", "fig4b",
            "fig4c", "fig5", "fig6a", "fig6b"]

    def test_comparison_rows(self):
        result = make_result(passed=False)
        headers, rows = result.comparison_table()
        assert rows[0][3] == "DEVIATES"
        assert not result.all_passed
