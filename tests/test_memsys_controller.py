"""Tests for the array controller and its probability tables."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arrays.layout import ArrayLayout
from repro.arrays.pattern import random_pattern
from repro.errors import ParameterError
from repro.memsys.controller import (
    ArrayController,
    WordMap,
    neighborhood_class_map,
)
from repro.memsys.ecc import HammingSECDED


@pytest.fixture(scope="module")
def controller():
    from repro.device import MTJDevice, PAPER_EVAL_DEVICE
    device = MTJDevice(PAPER_EVAL_DEVICE)
    layout = ArrayLayout(pitch=70e-9, rows=16, cols=16)
    return ArrayController(device, layout, HammingSECDED(64))


class TestClassMap:
    def test_interior_counts_match_neighborhood_of(self):
        bits = random_pattern(8, 8, rng=3).bits
        nd, ng = neighborhood_class_map(bits)
        from repro.arrays.pattern import DataPattern
        pattern = DataPattern(bits)
        for row in range(1, 7):
            for col in range(1, 7):
                np8 = pattern.neighborhood_of(row, col)
                assert nd[row, col] == np8.direct_ones
                assert ng[row, col] == np8.diagonal_ones

    def test_border_uses_dummy_p_cells(self):
        bits = np.ones((3, 3), dtype=np.int8)
        nd, ng = neighborhood_class_map(bits)
        # Corner cell: two direct + one diagonal in-array neighbor.
        assert nd[0, 0] == 2
        assert ng[0, 0] == 1
        assert nd[1, 1] == 4
        assert ng[1, 1] == 4

    def test_rejects_non_2d(self):
        with pytest.raises(ParameterError):
            neighborhood_class_map(np.zeros(9, dtype=np.int8))


class TestWordMap:
    def test_capacity(self):
        layout = ArrayLayout(pitch=70e-9, rows=64, cols=64)
        words = WordMap(layout, 72)
        assert words.n_words == 4096 // 72
        assert words.cells.shape == (words.n_words, 72)
        assert words.n_mapped_cells <= layout.n_cells

    def test_too_small(self):
        layout = ArrayLayout(pitch=70e-9, rows=4, cols=4)
        with pytest.raises(ParameterError):
            WordMap(layout, 72)


class TestTables:
    def test_shapes_and_ranges(self, controller):
        for table in (controller.wer_table, controller.disturb_table,
                      controller.retention_rate_table):
            assert table.shape == (2, 5, 5)
            assert np.all(table >= 0.0)
        assert np.all(controller.wer_table <= 1.0)
        assert np.all(controller.disturb_table <= 1.0)

    def test_trim_hits_nominal_at_mean_class(self, controller):
        """At the trim point (class 2,2 field) WER equals the target."""
        assert controller.class_field(2, 2) == pytest.approx(
            controller.hz_operating)
        for bit in (0, 1):
            assert controller.wer_table[bit, 2, 2] == pytest.approx(
                controller.nominal_wer, rel=1e-6)

    def test_write0_worst_at_all_p_neighbors(self, controller):
        """AP->P writes are hardest at NP8 = 0 (paper Fig. 5)."""
        table = controller.wer_table[0]
        assert table[0, 0] == table.max()
        assert table[4, 4] == table.min()

    def test_write1_worst_at_all_ap_neighbors(self, controller):
        table = controller.wer_table[1]
        assert table[4, 4] == table.max()
        assert table[0, 0] == table.min()

    def test_wer_monotone_in_class_counts(self, controller):
        """More AP neighbors monotonically ease AP->P writes."""
        table = controller.wer_table[0]
        assert np.all(np.diff(table, axis=0) < 0)
        assert np.all(np.diff(table, axis=1) < 0)

    def test_probability_lookups_vectorized(self, controller):
        bits = np.array([[0, 1], [1, 0]])
        nd = np.array([[0, 1], [2, 3]])
        ng = np.array([[4, 3], [2, 1]])
        p = controller.write_error_probability(bits, nd, ng)
        assert p.shape == (2, 2)
        assert p[0, 0] == controller.wer_table[0, 0, 4]
        assert p[1, 1] == controller.wer_table[0, 3, 1]

    def test_retention_probability_scales_with_interval(self,
                                                        controller):
        bits = np.zeros((2, 2), dtype=np.int8)
        nd = np.full((2, 2), 2)
        ng = np.full((2, 2), 2)
        p_short = controller.retention_flip_probability(
            bits, nd, ng, 1.0)
        p_long = controller.retention_flip_probability(
            bits, nd, ng, 1e6)
        assert np.all(p_long >= p_short)

    def test_retention_zero_interval_allowed(self, controller):
        """A zero-dwell window (scrub immediately before the access)
        is valid and yields flip probability exactly 0."""
        bits = np.zeros((2, 2), dtype=np.int8)
        nd = np.full((2, 2), 2)
        ng = np.full((2, 2), 2)
        p = controller.retention_flip_probability(bits, nd, ng, 0.0)
        assert np.all(p == 0.0)
        assert np.all(controller.retention_class_probability(0.0)
                      == 0.0)

    def test_retention_negative_interval_rejected(self, controller):
        bits = np.zeros((2, 2), dtype=np.int8)
        nd = ng = np.full((2, 2), 2)
        with pytest.raises(ParameterError):
            controller.retention_flip_probability(bits, nd, ng, -1.0)
        with pytest.raises(ParameterError):
            controller.retention_class_probability(-1e-9)

    def test_class_probability_views_match_tables(self, controller):
        """Flat views follow the class_index memory layout exactly."""
        from repro.memsys.sampling import class_index
        bits = np.array([0, 1, 1, 0])
        nd = np.array([0, 2, 4, 1])
        ng = np.array([3, 0, 4, 2])
        ci = class_index(bits, nd, ng)
        assert np.array_equal(
            controller.wer_class_probability()[ci],
            controller.wer_table[bits, nd, ng])
        assert np.array_equal(
            controller.disturb_class_probability()[ci],
            controller.disturb_table[bits, nd, ng])
        assert np.allclose(
            controller.retention_class_probability(0.5)[ci],
            controller.retention_flip_probability(bits, nd, ng, 0.5))

    def test_describe(self, controller):
        info = controller.describe()
        assert info["code_bits"] == 72
        assert info["n_words"] == 256 // 72
        assert info["wer_spread"] > 1.0


class TestValidation:
    def test_device_type_checked(self):
        layout = ArrayLayout(pitch=70e-9, rows=16, cols=16)
        with pytest.raises(ParameterError):
            ArrayController("device", layout, HammingSECDED(64))

    def test_nominal_wer_range(self):
        from repro.device import MTJDevice, PAPER_EVAL_DEVICE
        layout = ArrayLayout(pitch=70e-9, rows=16, cols=16)
        with pytest.raises(Exception):
            ArrayController(MTJDevice(PAPER_EVAL_DEVICE), layout,
                            HammingSECDED(64), nominal_wer=1.5)
