"""Tests for the persistent on-disk kernel cache.

Covers the happy path (round trip, bit-identical values, env-var
opt-in), every fault-injection scenario the store must survive
(truncation, tampered sidecar, schema mismatch, lost files, torn
concurrent writes), and the process-boundary behavior the cache exists
for (a subprocess's kernels warming the parent, the two-run hit-rate
acceptance criterion of the memsys pitch sweep).
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading

import numpy as np
import pytest

from repro.arrays import kernel_disk, kernel_store
from repro.arrays.kernel_disk import (
    KERNEL_CACHE_ENV,
    DiskKernelCache,
    KernelCacheError,
    key_digest,
)
from repro.arrays.kernel_store import KernelStore, get_kernel_store
from repro.stack import build_reference_stack

OFFSET = (90e-9, 0.0)


@pytest.fixture(scope="module")
def stack():
    return build_reference_stack(55e-9)


@pytest.fixture
def disk(tmp_path):
    return DiskKernelCache(tmp_path / "kernels")


@pytest.fixture
def global_store(monkeypatch):
    """The process-wide store, detached and cleared before and after."""
    monkeypatch.delenv(KERNEL_CACHE_ENV, raising=False)
    store = kernel_store._GLOBAL_STORE
    store.detach_disk()
    store.clear()
    yield store
    store.detach_disk()
    store.clear()


def _warm(disk, stack):
    """Compute one kernel through a disk-backed store and persist it."""
    store = KernelStore(disk=disk)
    value = store.kernel(stack, OFFSET, "fl")
    assert store.flush_disk() == 1
    return value


class TestRoundTrip:
    def test_fresh_store_reads_bit_identical_value(self, disk, stack):
        value = _warm(disk, stack)
        fresh = KernelStore(disk=disk)
        assert fresh.kernel(stack, OFFSET, "fl") == value
        stats = fresh.stats()
        assert stats["disk_hits"] == 1
        assert stats["misses"] == 0

    def test_disk_backed_equals_pure_memory_compute(self, disk, stack):
        """Parity: a disk round trip changes no bits vs a fresh compute."""
        _warm(disk, stack)
        from_disk = KernelStore(disk=disk).kernel(stack, OFFSET, "fl")
        recomputed = KernelStore().kernel(stack, OFFSET, "fl")
        assert from_disk == recomputed

    def test_batch_lookups_hit_disk(self, disk, stack):
        store = KernelStore(disk=disk)
        offsets = [(90e-9, 0.0), (0.0, 90e-9), (90e-9, 90e-9)]
        expected = store.kernel_batch(stack, offsets, "fixed")
        assert store.flush_disk() == 3
        fresh = KernelStore(disk=disk)
        got = fresh.kernel_batch(stack, offsets, "fixed")
        np.testing.assert_array_equal(got, expected)
        assert fresh.stats()["disk_hits"] == 3

    def test_merge_write_accumulates(self, disk, stack):
        _warm(disk, stack)
        second = KernelStore(disk=disk)
        second.kernel(stack, OFFSET, "fixed")  # new entry
        second.flush_disk()
        assert len(disk.load()) == 2

    def test_flush_without_disk_is_noop(self, stack):
        store = KernelStore()
        store.kernel(stack, OFFSET, "fl")
        assert store.flush_disk() == 0

    def test_autoflush_at_threshold(self, disk, stack, monkeypatch):
        monkeypatch.setattr(KernelStore, "FLUSH_THRESHOLD", 2)
        store = KernelStore(disk=disk)
        store.kernel(stack, OFFSET, "fl")
        assert store.stats()["disk_pending"] == 1
        store.kernel(stack, OFFSET, "fixed")
        assert store.stats()["disk_pending"] == 0
        assert len(disk.load()) == 2


class TestFaultInjection:
    """Every corruption falls back to recompute, visibly, silently."""

    def _assert_fallback(self, disk, stack, expected_value):
        store = KernelStore(disk=disk)
        assert store.kernel(stack, OFFSET, "fl") == expected_value
        stats = store.stats()
        assert stats["disk_fallbacks"] == 1
        assert stats["disk_hits"] == 0
        assert stats["misses"] == 1

    def test_truncated_payload(self, disk, stack):
        value = _warm(disk, stack)
        with open(disk.data_path, "r+b") as fh:
            fh.truncate(os.path.getsize(disk.data_path) // 2)
        self._assert_fallback(disk, stack, value)

    def test_truncated_header(self, disk, stack):
        value = _warm(disk, stack)
        with open(disk.data_path, "r+b") as fh:
            fh.truncate(10)
        self._assert_fallback(disk, stack, value)

    def test_wrong_schema_version_in_header(self, disk, stack):
        value = _warm(disk, stack)
        with open(disk.data_path, "r+b") as fh:
            fh.seek(8)  # the u32 schema field after the 8-byte magic
            fh.write((kernel_disk.SCHEMA_VERSION + 1).to_bytes(
                4, "little"))
        self._assert_fallback(disk, stack, value)

    def test_garbage_magic(self, disk, stack):
        value = _warm(disk, stack)
        with open(disk.data_path, "r+b") as fh:
            fh.write(b"GARBAGE!")
        self._assert_fallback(disk, stack, value)

    def test_flipped_payload_bit_fails_checksum(self, disk, stack):
        value = _warm(disk, stack)
        with open(disk.data_path, "r+b") as fh:
            fh.seek(-1, os.SEEK_END)
            last = fh.read(1)
            fh.seek(-1, os.SEEK_END)
            fh.write(bytes([last[0] ^ 0xFF]))
        self._assert_fallback(disk, stack, value)

    def test_schema_bump_invalidates_cold_not_corrupt(
            self, disk, stack, monkeypatch):
        """A version bump ignores old files: cold start, no fallback."""
        value = _warm(disk, stack)
        monkeypatch.setattr(kernel_disk, "SCHEMA_VERSION",
                            kernel_disk.SCHEMA_VERSION + 1)
        store = KernelStore(disk=DiskKernelCache(disk.directory))
        assert store.kernel(stack, OFFSET, "fl") == value
        stats = store.stats()
        assert stats["disk_fallbacks"] == 0
        assert stats["misses"] == 1

    def test_concurrent_writers_never_raise(self, disk):
        """Interleaved merge-writers leave a valid cache behind."""
        errors = []

        def write_many(base):
            try:
                for i in range(8):
                    disk.write({key_digest((base, i)): float(base + i)})
            except Exception as exc:  # pragma: no cover - the assertion
                errors.append(exc)

        threads = [threading.Thread(target=write_many, args=(100 * t,))
                   for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        # The single-file atomic replace means the cache is valid at
        # every instant, and the flock writer serialization means no
        # entry is ever lost where fcntl exists (all POSIX CI). Without
        # fcntl, last-replace-wins may drop entries but never values.
        info = disk.describe()
        assert info["valid"]
        loaded = disk.load()
        try:
            import fcntl  # noqa: F401  (probe for lock availability)
            locked = True
        except ImportError:  # pragma: no cover - non-POSIX
            locked = False
        for (base, i), value in [((100 * t, i), float(100 * t + i))
                                 for t in range(4) for i in range(8)]:
            got = loaded.get(key_digest((base, i)))
            if locked:
                assert got == value   # serialization: no lost updates
            else:  # pragma: no cover - non-POSIX
                assert got is None or got == value

    def test_unwritable_directory_counts_write_failure(self, stack):
        store = KernelStore(
            disk=DiskKernelCache("/proc/definitely-not-writable"))
        store.kernel(stack, OFFSET, "fl")
        assert store.flush_disk() == 0
        assert store.stats()["disk_write_failures"] >= 1

    def test_failed_load_retries_after_cooldown(self, disk, stack,
                                                monkeypatch):
        """An externally repaired cache comes back without restarting
        the process (the failure is latched only for a cooldown)."""
        value = _warm(disk, stack)
        with open(disk.data_path, "r+b") as fh:
            fh.write(b"GARBAGE!")
        store = KernelStore(disk=disk)
        assert store.kernel(stack, OFFSET, "fl") == value
        assert store.stats()["disk_fallbacks"] == 1
        # Repair externally, as `repro cache clear` + `warm` would,
        # seeding a key the latched store has not computed yet.
        disk.clear()
        repair = KernelStore(disk=disk)
        fixed_value = repair.kernel(stack, OFFSET, "fixed")
        repair.flush_disk()
        store.kernel(stack, (91e-9, 0.0), "fl")  # in cooldown: compute
        assert store.stats()["disk_hits"] == 0
        monkeypatch.setattr(KernelStore, "DISK_RETRY_SECONDS", 0.0)
        assert store.kernel(stack, OFFSET, "fixed") == fixed_value
        assert store.stats()["disk_hits"] == 1

    def test_clear_removes_all_versions(self, disk, stack):
        _warm(disk, stack)
        assert disk.clear() >= 1   # data file (+ writer lock file)
        assert not os.path.exists(disk.data_path)
        assert len(disk.load()) == 0

    def test_clear_sweeps_interrupted_writer_leftovers(self, disk,
                                                       stack):
        _warm(disk, stack)
        stray = os.path.join(disk.directory, "tmpabc123.bin.tmp")
        with open(stray, "wb") as fh:
            fh.write(b"partial")
        disk.clear()
        assert not os.path.exists(stray)
        # Only the writer-serialization lock file may remain.
        assert os.listdir(disk.directory) in ([], ["kernels.lock"])


class TestEnvOptIn:
    def test_env_var_attaches_and_detaches(self, global_store,
                                           monkeypatch, tmp_path):
        monkeypatch.setenv(KERNEL_CACHE_ENV, str(tmp_path / "kc"))
        store = get_kernel_store()
        assert store is global_store
        assert store.disk is not None
        assert store.disk.directory == str(tmp_path / "kc")
        monkeypatch.delenv(KERNEL_CACHE_ENV)
        assert get_kernel_store().disk is None

    def test_explicit_attach_wins_over_env(self, global_store,
                                           monkeypatch, tmp_path):
        global_store.attach_disk(DiskKernelCache(tmp_path / "mine"))
        monkeypatch.setenv(KERNEL_CACHE_ENV, str(tmp_path / "env"))
        assert get_kernel_store().disk.directory == str(tmp_path / "mine")

    def test_stats_without_disk_keep_base_shape(self, stack):
        store = KernelStore()
        store.kernel(stack, OFFSET, "fl")
        assert set(store.stats()) == {"entries", "hits", "misses"}


@pytest.mark.integration
class TestProcessBoundary:
    def _run_child(self, tmp_path, code):
        env = dict(os.environ)
        env[KERNEL_CACHE_ENV] = str(tmp_path / "kc")
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        out = subprocess.run([sys.executable, "-c", code], env=env,
                             capture_output=True, text=True, timeout=300)
        assert out.returncode == 0, out.stderr
        return out.stdout

    def test_round_trip_across_subprocess(self, global_store,
                                          monkeypatch, tmp_path):
        code = (
            "from repro.arrays.kernel_store import get_kernel_store\n"
            "from repro.stack import build_reference_stack\n"
            "store = get_kernel_store()\n"
            "value = store.kernel(build_reference_stack(55e-9), "
            "(90e-9, 0.0), 'fl')\n"
            "store.flush_disk()\n"
            "print(repr(value))\n")
        child_value = float(self._run_child(tmp_path, code))
        monkeypatch.setenv(KERNEL_CACHE_ENV, str(tmp_path / "kc"))
        store = get_kernel_store()
        value = store.kernel(build_reference_stack(55e-9), OFFSET, "fl")
        assert value == child_value
        assert store.stats()["disk_hits"] == 1

    def test_pool_workers_persist_their_kernels(self, global_store,
                                                monkeypatch, tmp_path):
        """Process-pool workers flush at pool shutdown (plain atexit
        never fires in multiprocessing children), so a parallel cold
        run must still warm the disk cache."""
        from repro.device import MTJDevice, PAPER_EVAL_DEVICE
        from repro.memsys import uber_sweep
        monkeypatch.setenv(KERNEL_CACHE_ENV, str(tmp_path / "kc"))
        device = MTJDevice(PAPER_EVAL_DEVICE)
        uber_sweep(device, pitch_ratios=(3.0, 1.5),
                   patterns=("solid0",), rows=16, cols=16, seed=3,
                   jobs=2)
        # 2 pitches x 4 symmetry-reduced kernels; a rare torn-window
        # race may drop one writer's view, never everything.
        persisted = DiskKernelCache(str(tmp_path / "kc"))
        assert len(persisted.load()) >= 4

    def test_memsys_sweep_second_run_hits_90_percent(
            self, global_store, monkeypatch, tmp_path):
        """Acceptance: rerunning a seeded pitch sweep from a cold
        process with the disk cache enabled is almost pure lookups."""
        from repro.device import MTJDevice, PAPER_EVAL_DEVICE
        from repro.memsys import uber_sweep

        monkeypatch.setenv(KERNEL_CACHE_ENV, str(tmp_path / "kc"))
        device = MTJDevice(PAPER_EVAL_DEVICE)
        kwargs = dict(pitch_ratios=(3.0, 2.0, 1.5),
                      patterns=("solid0",), rows=16, cols=16, seed=3)
        first = uber_sweep(device, **kwargs)

        # A fresh store in the same process stands in for a cold
        # process: empty memory, same disk, same env.
        fresh = KernelStore()
        monkeypatch.setattr(kernel_store, "_GLOBAL_STORE", fresh)
        second = uber_sweep(device, **kwargs)
        assert second.rows == first.rows

        stats = fresh.stats()
        lookups = (stats["hits"] + stats["disk_hits"]
                   + stats["misses"])
        hit_rate = (stats["hits"] + stats["disk_hits"]) / lookups
        assert hit_rate >= 0.90
        assert stats["misses"] == 0
