"""Cross-module property-based tests (hypothesis).

Invariants that tie the physics models together, checked over randomized
parameter ranges rather than single anchor points.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.device import MTJDevice, PAPER_EVAL_DEVICE
from repro.device.energy import delta_with_stray
from repro.device.switching import critical_current
from repro.fields import (
    CurrentLoop,
    LoopCollection,
    dipole_field,
    loop_field_analytic,
)
from repro.units import am_to_oe, oe_to_am

H_RATIOS = st.floats(min_value=-0.3, max_value=0.3)
RADII = st.floats(min_value=8e-9, max_value=60e-9)
CURRENTS = st.floats(min_value=-4e-3, max_value=4e-3).filter(
    lambda c: abs(c) > 1e-5)
VOLTAGES = st.floats(min_value=0.8, max_value=1.2)


class TestSwitchingIdentities:
    @given(H_RATIOS)
    def test_ic_directions_sum_to_twice_intrinsic(self, h):
        """Eq. 2: Ic(P->AP) + Ic(AP->P) = 2 Ic0 for any stray field."""
        ic0 = 57.2e-6
        total = (critical_current(ic0, h, "P->AP")
                 + critical_current(ic0, h, "AP->P"))
        assert total == pytest.approx(2 * ic0, rel=1e-12)

    @given(H_RATIOS)
    def test_delta_geometric_mean_bounded(self, h):
        """Eq. 5: sqrt(Delta_P * Delta_AP) = Delta0 (1 - h^2) <= Delta0."""
        d0 = 45.5
        dp = delta_with_stray(d0, h, "P")
        dap = delta_with_stray(d0, h, "AP")
        assert math.sqrt(dp * dap) == pytest.approx(
            d0 * (1 - h * h), rel=1e-12)

    @given(H_RATIOS, H_RATIOS)
    def test_ic_monotone_in_stray_field(self, h1, h2):
        """More positive field -> easier AP->P, harder P->AP."""
        ic0 = 57.2e-6
        lo, hi = min(h1, h2), max(h1, h2)
        assert (critical_current(ic0, hi, "AP->P")
                <= critical_current(ic0, lo, "AP->P") + 1e-18)
        assert (critical_current(ic0, hi, "P->AP")
                >= critical_current(ic0, lo, "P->AP") - 1e-18)

    @settings(max_examples=20, deadline=None)
    @given(VOLTAGES, H_RATIOS)
    def test_wer_mean_consistency(self, vp, h):
        """The WER model's mean switching time equals Sun's tw exactly."""
        from repro.apps import WriteErrorModel
        device = MTJDevice(PAPER_EVAL_DEVICE)
        model = WriteErrorModel(device)
        hz = h * device.params.hk
        tw = device.switching_time(vp, hz)
        if not math.isfinite(tw):
            return
        assert model.mean_switching_time(vp, hz) == pytest.approx(
            tw, rel=1e-12)


class TestFieldLinearity:
    @settings(max_examples=25, deadline=None)
    @given(RADII, CURRENTS, st.floats(min_value=0.2, max_value=4.0))
    def test_field_linear_in_current(self, radius, current, scale):
        point = np.array([1.7 * radius, 0.3 * radius, 0.4 * radius])
        base = loop_field_analytic(current, radius, point)
        scaled = loop_field_analytic(current * scale, radius, point)
        np.testing.assert_allclose(scaled, scale * base, rtol=1e-9,
                                   atol=1e-12)

    @settings(max_examples=25, deadline=None)
    @given(RADII, CURRENTS)
    def test_superposition_commutes(self, radius, current):
        a = CurrentLoop((0.0, 0.0, 0.0), radius, current)
        b = CurrentLoop((3 * radius, 0.0, 0.0), radius, -0.5 * current)
        point = np.array([[1.2 * radius, radius, 0.5 * radius]])
        ab = LoopCollection([a, b]).field(point)
        ba = LoopCollection([b, a]).field(point)
        np.testing.assert_allclose(ab, ba, rtol=1e-12)

    @settings(max_examples=20, deadline=None)
    @given(RADII, CURRENTS,
           st.floats(min_value=4.0, max_value=12.0))
    def test_far_field_is_dipolar(self, radius, current, distance_ratio):
        loop = CurrentLoop((0.0, 0.0, 0.0), radius, current)
        point = np.array([distance_ratio * radius, 0.0,
                          0.5 * radius])
        exact = loop.field(point)
        approx = dipole_field(loop.moment, point)
        rel = (np.linalg.norm(exact - approx)
               / max(np.linalg.norm(exact), 1e-30))
        assert rel < 0.12

    @settings(max_examples=15, deadline=None)
    @given(st.floats(min_value=-0.8, max_value=0.8),
           st.floats(min_value=-0.8, max_value=0.8))
    def test_mirror_symmetry_across_loop_plane(self, x_frac, y_frac):
        radius = 20e-9
        loop = CurrentLoop((0.0, 0.0, 0.0), radius, 1e-3)
        above = loop.field(np.array(
            [x_frac * radius, y_frac * radius, 0.35 * radius]))
        below = loop.field(np.array(
            [x_frac * radius, y_frac * radius, -0.35 * radius]))
        # Hz even, in-plane components odd across the loop plane.
        assert above[2] == pytest.approx(below[2], rel=1e-9)
        assert above[0] == pytest.approx(-below[0], rel=1e-9,
                                         abs=1e-12)
        assert above[1] == pytest.approx(-below[1], rel=1e-9,
                                         abs=1e-12)


ECDS = st.floats(min_value=20e-9, max_value=80e-9)
TEMPS = st.floats(min_value=250.0, max_value=400.0)
MS_SCALES = st.floats(min_value=0.5, max_value=2.0).filter(
    lambda s: abs(s - 1.0) > 1e-9)
AXIS_VALUES = st.lists(st.integers(min_value=-50, max_value=50),
                       min_size=1, max_size=4)


class TestFingerprintProperties:
    """``stack_fingerprint`` stability and sensitivity: equal stacks
    share a key; any geometry, moment, or temperature perturbation
    produces a new key (nothing is ever invalidated in place)."""

    @settings(max_examples=30, deadline=None)
    @given(ECDS)
    def test_same_stack_same_key(self, ecd):
        from repro.arrays import stack_fingerprint
        from repro.stack import build_reference_stack
        assert stack_fingerprint(build_reference_stack(ecd)) == \
            stack_fingerprint(build_reference_stack(ecd))

    @settings(max_examples=30, deadline=None)
    @given(ECDS, st.floats(min_value=1e-10, max_value=5e-9))
    def test_geometry_perturbation_changes_key(self, ecd, delta):
        from repro.arrays import stack_fingerprint
        from repro.stack import build_reference_stack
        assert stack_fingerprint(build_reference_stack(ecd)) != \
            stack_fingerprint(build_reference_stack(ecd + delta))

    @settings(max_examples=30, deadline=None)
    @given(ECDS, MS_SCALES)
    def test_moment_perturbation_changes_key(self, ecd, scale):
        from repro.arrays import stack_fingerprint
        from repro.stack import DEFAULT_RL_MS, build_reference_stack
        base = build_reference_stack(ecd)
        scaled = build_reference_stack(ecd, rl_ms=scale * DEFAULT_RL_MS)
        assert stack_fingerprint(base) != stack_fingerprint(scaled)

    @settings(max_examples=30, deadline=None)
    @given(ECDS, TEMPS)
    def test_temperature_changes_key(self, ecd, temperature):
        from hypothesis import assume
        from repro.arrays import stack_fingerprint
        from repro.materials import ROOM_TEMPERATURE
        from repro.stack import build_reference_stack
        # At the Bloch reference temperature the effective moments are
        # the nominal ones, so the key legitimately coincides.
        assume(abs(temperature - ROOM_TEMPERATURE) > 1.0)
        stack = build_reference_stack(ecd)
        cold = stack_fingerprint(stack)
        hot = stack_fingerprint(stack, temperature=temperature)
        assert cold != hot

    @settings(max_examples=30, deadline=None)
    @given(ECDS, TEMPS)
    def test_temperature_key_is_deterministic(self, ecd, temperature):
        from repro.arrays import stack_fingerprint
        from repro.stack import build_reference_stack
        assert stack_fingerprint(build_reference_stack(ecd),
                                 temperature=temperature) == \
            stack_fingerprint(build_reference_stack(ecd),
                              temperature=temperature)


class TestSweepSpecProperties:
    """Ordering invariants of the sweep grid under arbitrary axes."""

    @settings(max_examples=50, deadline=None)
    @given(AXIS_VALUES, AXIS_VALUES)
    def test_product_is_itertools_product_order(self, a, b):
        import itertools
        from repro.sweep import SweepSpec
        spec = SweepSpec.product(a=a, b=b)
        expected = [{"a": x, "b": y}
                    for x, y in itertools.product(a, b)]
        assert spec.points() == expected
        assert len(spec) == len(a) * len(b)
        assert spec.shape == (len(a), len(b))

    @settings(max_examples=50, deadline=None)
    @given(AXIS_VALUES)
    def test_zip_pairs_elementwise(self, values):
        from repro.sweep import SweepSpec
        labels = [f"v{i}" for i in range(len(values))]
        spec = SweepSpec.zipped(x=values, label=labels)
        assert spec.points() == [{"x": v, "label": lab}
                                 for v, lab in zip(values, labels)]
        assert spec.shape == (len(values),)

    @settings(max_examples=50, deadline=None)
    @given(AXIS_VALUES, AXIS_VALUES)
    def test_composition_is_left_major(self, a, b):
        from repro.sweep import SweepSpec
        composed = SweepSpec.product(a=a) * SweepSpec.product(b=b)
        assert composed.points() == SweepSpec.product(a=a, b=b).points()
        assert composed.names == ("a", "b")

    @settings(max_examples=50, deadline=None)
    @given(AXIS_VALUES, AXIS_VALUES)
    def test_point_indexing_matches_iteration(self, a, b):
        from repro.sweep import SweepSpec
        spec = SweepSpec.product(a=a, b=b)
        assert [spec.point(i) for i in range(len(spec))] == \
            list(spec)

    @settings(max_examples=50, deadline=None)
    @given(AXIS_VALUES, AXIS_VALUES)
    def test_serial_run_preserves_spec_order(self, a, b):
        from repro.sweep import SweepSpec, run_sweep
        spec = SweepSpec.product(a=a, b=b)
        result = run_sweep(_pair_point, spec)
        assert result.values == [(p["a"], p["b"]) for p in spec]


def _pair_point(a, b):
    """Module-level picklable point function: identity pair."""
    return (a, b)


class TestCouplingAlgebra:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=255),
           st.integers(min_value=0, max_value=3))
    def test_single_bit_flip_step(self, np8, direct_bit):
        """Flipping one direct neighbor moves Hz by exactly the direct
        step, regardless of the rest of the pattern (linearity)."""
        from repro.arrays import InterCellCoupling, NeighborhoodPattern
        from repro.stack import build_reference_stack
        coupling = InterCellCoupling(build_reference_stack(55e-9),
                                     90e-9)
        pattern = NeighborhoodPattern.from_int(np8)
        flipped_bits = list(pattern.bits)
        flipped_bits[direct_bit] = 1 - flipped_bits[direct_bit]
        flipped = NeighborhoodPattern(tuple(flipped_bits))
        step = abs(coupling.hz_inter_fast(flipped)
                   - coupling.hz_inter_fast(pattern))
        expected = 2 * abs(coupling.kernels().fl_direct)
        assert step == pytest.approx(expected, rel=1e-9)

    @settings(max_examples=10, deadline=None)
    @given(st.floats(min_value=55.0, max_value=180.0))
    def test_psi_scale_invariance_in_hc(self, pitch_nm):
        """Psi is inversely proportional to Hc by definition."""
        from repro.core.psi import coupling_factor
        from repro.stack import build_reference_stack
        from repro.units import nm_to_m
        stack = build_reference_stack(35e-9)
        psi_1 = coupling_factor(stack, nm_to_m(pitch_nm),
                                oe_to_am(2200.0))
        psi_2 = coupling_factor(stack, nm_to_m(pitch_nm),
                                oe_to_am(1100.0))
        assert psi_2 == pytest.approx(2 * psi_1, rel=1e-12)


class TestOccurrenceRank:
    """Properties of the engine's round-splitting occurrence rank.

    ``_occurrence_rank`` partitions a batch of word addresses into
    rounds: the r-th access to each word lands in round r, so every
    round touches each word at most once while repeated accesses keep
    their sequential order.
    """

    WORDS = st.lists(st.integers(min_value=0, max_value=25),
                     max_size=120)

    @settings(max_examples=200, deadline=None)
    @given(WORDS)
    def test_each_word_at_most_once_per_round(self, words):
        from repro.memsys.engine import _occurrence_rank
        w = np.asarray(words, dtype=np.int64)
        rank = _occurrence_rank(w)
        assert rank.shape == w.shape
        n_rounds = int(rank.max()) + 1 if len(words) else 0
        for r in range(n_rounds):
            in_round = w[rank == r]
            assert len(np.unique(in_round)) == len(in_round)

    @settings(max_examples=200, deadline=None)
    @given(WORDS)
    def test_ranks_dense_and_sequential_per_word(self, words):
        from repro.memsys.engine import _occurrence_rank
        w = np.asarray(words, dtype=np.int64)
        rank = _occurrence_rank(w)
        for word in set(words):
            ranks = rank[w == word]
            # dense: exactly 0..k-1 for k occurrences, and in batch
            # order — the i-th occurrence gets rank i.
            assert list(ranks) == list(range(len(ranks)))
