"""Wire protocol: parsing, normalization, and fingerprints."""

import dataclasses
import json

import pytest

from repro.errors import ParameterError
from repro.service.protocol import (
    PROTOCOL_VERSION,
    QUERY_TYPES,
    SweepQuery,
    UberQuery,
    decode_line,
    device_for,
    encode_line,
    parse_request,
    query_fingerprint,
)


class TestFraming:
    def test_round_trip(self):
        obj = {"op": "uber", "id": "q1", "pitch_nm": 70.0}
        assert decode_line(encode_line(obj)) == obj

    def test_encode_is_one_line(self):
        frame = encode_line({"a": "with\nnewline"})
        assert frame.endswith(b"\n")
        assert frame.count(b"\n") == 1

    def test_decode_rejects_bad_json(self):
        with pytest.raises(ParameterError):
            decode_line(b"{not json}\n")

    def test_decode_rejects_non_objects(self):
        with pytest.raises(ParameterError):
            decode_line(b"[1, 2, 3]\n")


class TestParseRequest:
    def test_known_ops(self):
        for op, cls in QUERY_TYPES.items():
            assert isinstance(parse_request({"op": op}), cls)

    def test_unknown_op(self):
        with pytest.raises(ParameterError, match="unknown op"):
            parse_request({"op": "frobnicate"})

    def test_unknown_parameter(self):
        with pytest.raises(ParameterError, match="pitchnm"):
            parse_request({"op": "uber", "pitchnm": 70})

    def test_envelope_keys_are_not_parameters(self):
        query = parse_request({"op": "uber", "id": "client-7",
                               "pitch_nm": 60})
        assert query.pitch_nm == 60

    def test_out_of_domain_value(self):
        with pytest.raises(ParameterError):
            parse_request({"op": "uber", "pitch_nm": -1.0})

    def test_bad_mode(self):
        with pytest.raises(ParameterError):
            parse_request({"op": "uber", "mode": "psychic"})

    def test_sweep_normalizes_sequences(self):
        query = parse_request({"op": "sweep",
                               "pitch_ratios": [3, 2],
                               "patterns": "random",
                               "eccs": ["secded"]})
        assert query.pitch_ratios == (3.0, 2.0)
        assert query.patterns == ("random",)
        assert query.n_points == 2

    def test_sweep_rejects_empty_grid_axis(self):
        with pytest.raises(ParameterError):
            parse_request({"op": "sweep", "pitch_ratios": []})


class TestTopologyFields:
    def test_defaults_are_flat(self):
        query = parse_request({"op": "uber"})
        assert (query.topology, query.banks, query.subarrays) == \
            ("flat", 1, 1)

    def test_cross_point_spelling_normalizes(self):
        query = parse_request({"op": "uber", "topology": "cross-point",
                               "banks": 2, "subarrays": 2})
        assert query.topology == "cross_point"

    def test_both_spellings_share_a_fingerprint(self):
        dashed = parse_request({"op": "uber", "topology": "cross-point",
                                "banks": 2, "subarrays": 2})
        scored = parse_request({"op": "uber", "topology": "cross_point",
                                "banks": 2, "subarrays": 2})
        assert query_fingerprint(dashed) == query_fingerprint(scored)

    def test_topology_changes_key(self):
        flat = parse_request({"op": "uber"})
        banked = parse_request({"op": "uber", "topology": "banked",
                                "banks": 2, "subarrays": 2})
        assert query_fingerprint(flat) != query_fingerprint(banked)

    def test_unknown_topology_rejected(self):
        with pytest.raises(ParameterError):
            parse_request({"op": "uber", "topology": "toroidal"})

    def test_flat_cannot_shard(self):
        with pytest.raises(ParameterError):
            parse_request({"op": "uber", "banks": 2})

    def test_non_divisible_geometry_rejected(self):
        with pytest.raises(ParameterError):
            parse_request({"op": "uber", "topology": "banked",
                           "banks": 3, "rows": 64})
        with pytest.raises(ParameterError):
            parse_request({"op": "uber", "topology": "banked",
                           "subarrays": 5, "cols": 64})


class TestFingerprint:
    def test_int_and_float_spellings_collapse(self):
        a = parse_request({"op": "uber", "pitch_nm": 70})
        b = parse_request({"op": "uber", "pitch_nm": 70.0})
        assert query_fingerprint(a) == query_fingerprint(b)

    def test_defaults_and_explicit_defaults_collapse(self):
        a = parse_request({"op": "uber"})
        b = parse_request({"op": "uber", "ecc": "secded",
                           "rows": 64})
        assert query_fingerprint(a) == query_fingerprint(b)

    def test_parameter_changes_key(self):
        a = parse_request({"op": "uber", "pitch_nm": 70.0})
        b = parse_request({"op": "uber", "pitch_nm": 60.0})
        assert query_fingerprint(a) != query_fingerprint(b)

    def test_op_changes_key(self):
        assert (query_fingerprint(parse_request({"op": "uber"}))
                != query_fingerprint(parse_request({"op": "sweep"})))

    def test_device_geometry_changes_key(self):
        a = parse_request({"op": "uber"})
        b = parse_request({"op": "uber", "ecd_nm": 25.0})
        assert query_fingerprint(a) != query_fingerprint(b)

    def test_fingerprint_shape(self):
        key = query_fingerprint(UberQuery())
        assert len(key) == 32
        assert all(c in "0123456789abcdef" for c in key)

    def test_version_is_part_of_the_key(self):
        # Defensive: the constant exists and is an int the digest can
        # fold in; bumping it is the documented invalidation story.
        assert isinstance(PROTOCOL_VERSION, int)

    def test_stable_across_processes(self):
        # The fingerprint must be derivable from reprs of plain
        # scalars only — spot-check it is deterministic here.
        assert (query_fingerprint(SweepQuery())
                == query_fingerprint(SweepQuery()))


class TestDeviceFor:
    def test_default_is_paper_device(self):
        from repro.device import PAPER_EVAL_DEVICE
        device = device_for(UberQuery())
        assert device.params.ecd == PAPER_EVAL_DEVICE.ecd

    def test_ecd_nm_retargets(self):
        device = device_for(UberQuery(ecd_nm=25.0))
        assert device.params.ecd == pytest.approx(25e-9)


class TestPayloadsAreJsonSafe:
    def test_queries_serialize(self):
        # Request dataclasses must stay JSON-representable: the client
        # spells them as dicts on the wire.
        for op in QUERY_TYPES:
            query = parse_request({"op": op})
            json.dumps(dataclasses.asdict(query))
