"""Tests for the command-line interface."""

from __future__ import annotations

import os

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["psi"])
        assert args.ecd_nm == 35.0
        assert args.target == 0.02


class TestCommands:
    def test_psi(self, capsys):
        assert main(["psi", "--points", "10"]) == 0
        out = capsys.readouterr().out
        assert "Psi vs pitch" in out
        assert "Psi = 2% at pitch" in out

    def test_psi_custom_target(self, capsys):
        assert main(["psi", "--points", "8", "--target", "0.05"]) == 0
        assert "5% at pitch" in capsys.readouterr().out

    def test_design(self, capsys):
        assert main(["design", "--ecds-nm", "35",
                     "--ratios", "1.5,3.0"]) == 0
        out = capsys.readouterr().out
        assert "Psi (%)" in out
        assert out.count("\n") >= 4

    def test_wer(self, capsys):
        assert main(["wer", "--vp", "1.0", "--target", "1e-4"]) == 0
        out = capsys.readouterr().out
        assert "WER=0.0001" in out

    def test_model_card(self, tmp_path, capsys):
        out_dir = str(tmp_path / "card")
        assert main(["model-card", "--out", out_dir,
                     "--name", "cell"]) == 0
        assert os.path.exists(os.path.join(out_dir, "cell.sp"))
        assert "wrote" in capsys.readouterr().out
