"""Tests for the command-line interface."""

from __future__ import annotations

import os

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["psi"])
        assert args.ecd_nm == 35.0
        assert args.target == 0.02


class TestCommands:
    def test_psi(self, capsys):
        assert main(["psi", "--points", "10"]) == 0
        out = capsys.readouterr().out
        assert "Psi vs pitch" in out
        assert "Psi = 2% at pitch" in out

    def test_psi_custom_target(self, capsys):
        assert main(["psi", "--points", "8", "--target", "0.05"]) == 0
        assert "5% at pitch" in capsys.readouterr().out

    def test_design(self, capsys):
        assert main(["design", "--ecds-nm", "35",
                     "--ratios", "1.5,3.0"]) == 0
        out = capsys.readouterr().out
        assert "Psi (%)" in out
        assert out.count("\n") >= 4

    def test_wer(self, capsys):
        assert main(["wer", "--vp", "1.0", "--target", "1e-4",
                     "--samples", "20000"]) == 0
        out = capsys.readouterr().out
        assert "WER=0.0001" in out
        assert "sampled WER" in out

    def test_wer_seed_reproducible(self, capsys):
        argv = ["wer", "--vp", "1.0", "--target", "1e-4",
                "--samples", "20000", "--seed", "5"]
        outputs = []
        for _ in range(2):
            assert main(argv) == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]

    def test_memsys(self, capsys):
        assert main(["memsys", "--pitch-nm", "70", "--pattern",
                     "random", "--ecc", "secded", "--seed", "1",
                     "--rows", "16", "--cols", "16",
                     "--transactions", "2000"]) == 0
        out = capsys.readouterr().out
        assert "raw BER (pre-ECC)" in out
        assert "post-ECC UBER" in out
        assert "pitch sweep" in out
        assert "worst-pattern UBER rises as pitch shrinks" in out

    def test_memsys_seed_reproducible(self, capsys):
        argv = ["memsys", "--seed", "9", "--rows", "16", "--cols",
                "16", "--transactions", "1000"]
        outputs = []
        for _ in range(2):
            assert main(argv) == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]

    def test_memsys_binomial_sampler(self, capsys):
        assert main(["memsys", "--seed", "3", "--rows", "16",
                     "--cols", "16", "--transactions", "1000",
                     "--sampler", "binomial", "--no-sweep"]) == 0
        out = capsys.readouterr().out
        assert "binomial sampler" in out
        assert "raw BER (pre-ECC)" in out
        assert "pitch sweep skipped" in out

    def test_memsys_profile_breakdown(self, capsys):
        assert main(["memsys", "--seed", "3", "--rows", "16",
                     "--cols", "16", "--transactions", "1000",
                     "--sampler", "binomial", "--profile",
                     "--no-sweep"]) == 0
        out = capsys.readouterr().out
        assert "phase wall-time breakdown" in out
        for phase in ("draw", "place", "total"):
            assert phase in out

    def test_memsys_preset_overlays_defaults(self):
        from repro.cli import _apply_memsys_preset, build_parser
        args = build_parser().parse_args(
            ["memsys", "--preset", "chip-1024",
             "--transactions", "5000"])
        _apply_memsys_preset(args)
        # preset values land...
        assert args.rows == args.cols == 1024
        assert args.sampler == "binomial"
        assert args.nominal_wer == 1e-6
        assert args.no_sweep is True
        assert args.topology == "banked"
        assert args.banks == args.subarrays == 4
        # ...but explicit flags win.
        assert args.transactions == 5000

    def test_memsys_banked_run(self, capsys):
        assert main(["memsys", "--seed", "2", "--rows", "32",
                     "--cols", "32", "--transactions", "2000",
                     "--topology", "banked", "--banks", "2",
                     "--subarrays", "2", "--no-sweep"]) == 0
        out = capsys.readouterr().out
        assert "topology: banked, 2 banks x 2 subarrays" in out
        assert "4 parallel sub-runs" in out
        assert "raw BER (pre-ECC)" in out

    def test_memsys_banked_1x1_matches_flat(self, capsys):
        argv = ["memsys", "--seed", "2", "--rows", "16", "--cols",
                "16", "--transactions", "1000", "--no-sweep"]
        assert main(argv) == 0
        flat = capsys.readouterr().out
        assert main(argv + ["--topology", "banked"]) == 0
        banked = capsys.readouterr().out
        # Identical physics modulo the extra topology line.
        stripped = "\n".join(line for line in banked.splitlines()
                             if not line.startswith("topology:"))
        assert stripped.strip() == flat.strip()

    def test_memsys_cross_point_reports_sneak(self, capsys):
        assert main(["memsys", "--seed", "9", "--rows", "32",
                     "--cols", "32", "--transactions", "20000",
                     "--topology", "cross-point", "--banks", "2",
                     "--subarrays", "2", "--read-voltage", "0.3",
                     "--no-sweep"]) == 0
        out = capsys.readouterr().out
        assert "topology: cross_point" in out
        assert "half-select sneak flips" in out

    def test_memsys_preset_runs(self, capsys):
        assert main(["memsys", "--preset", "stress", "--seed", "1",
                     "--rows", "16", "--cols", "16",
                     "--transactions", "500", "--no-sweep"]) == 0
        out = capsys.readouterr().out
        assert "checkerboard traffic" in out

    def test_memsys_out(self, tmp_path, capsys):
        out_dir = str(tmp_path / "memsys")
        assert main(["memsys", "--seed", "1", "--rows", "16",
                     "--cols", "16", "--transactions", "1000",
                     "--out", out_dir]) == 0
        assert "wrote" in capsys.readouterr().out
        assert os.path.exists(os.path.join(out_dir,
                                           "memsys_run.json"))
        assert os.path.exists(os.path.join(out_dir,
                                           "memsys_sweep.csv"))

    def test_model_card(self, tmp_path, capsys):
        out_dir = str(tmp_path / "card")
        assert main(["model-card", "--out", out_dir,
                     "--name", "cell"]) == 0
        assert os.path.exists(os.path.join(out_dir, "cell.sp"))
        assert "wrote" in capsys.readouterr().out

    def test_design_thread_executor_matches_serial(self, capsys):
        argv = ["design", "--ecds-nm", "35", "--ratios", "1.5,3.0"]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--jobs", "2",
                            "--executor", "thread"]) == 0
        assert capsys.readouterr().out == serial

    def test_rejects_unknown_executor(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["design", "--executor", "fibers"])

    def test_memsys_distributed_executor_matches_serial(self, capsys):
        argv = ["memsys", "--seed", "4", "--rows", "16", "--cols",
                "16", "--transactions", "500"]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--jobs", "2", "--executor",
                            "distributed"]) == 0
        assert capsys.readouterr().out == serial


class TestWorkerCommand:
    def test_requires_spool(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_SWEEP_SPOOL", raising=False)
        assert main(["worker", "--max-idle", "1"]) == 1
        assert "no spool directory" in capsys.readouterr().out

    def test_exits_on_shutdown_sentinel(self, tmp_path, capsys):
        from repro.sweep import SHUTDOWN_SENTINEL
        spool = tmp_path / "spool"
        spool.mkdir()
        (spool / SHUTDOWN_SENTINEL).touch()
        assert main(["worker", "--spool", str(spool), "--id", "w-cli",
                     "--poll", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "worker w-cli" in out
        assert "served 0 chunk(s)" in out


class TestCacheCommand:
    def test_requires_directory(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL_CACHE", raising=False)
        assert main(["cache", "info"]) == 1
        assert "no kernel cache configured" in capsys.readouterr().out

    def test_warm_info_clear_cycle(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "kc")
        assert main(["cache", "warm", "--dir", cache_dir,
                     "--ecds-nm", "35", "--ratios", "1.5,2.0",
                     "--order", "1"]) == 0
        out = capsys.readouterr().out
        assert "warmed" in out

        assert main(["cache", "info", "--dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "valid       True" in out
        assert "entries     0" not in out

        assert main(["cache", "clear", "--dir", cache_dir]) == 0
        assert "removed" in capsys.readouterr().out
        assert main(["cache", "info", "--dir", cache_dir]) == 0
        assert "entries     0" in capsys.readouterr().out

    def test_info_reads_env_var(self, tmp_path, capsys, monkeypatch):
        cache_dir = str(tmp_path / "kc")
        monkeypatch.setenv("REPRO_KERNEL_CACHE", cache_dir)
        assert main(["cache", "info"]) == 0
        assert cache_dir in capsys.readouterr().out

    def test_warm_leaves_global_store_unbacked(self, tmp_path):
        from repro.arrays.kernel_store import get_kernel_store
        assert main(["cache", "warm", "--dir", str(tmp_path / "kc"),
                     "--ecds-nm", "35", "--ratios", "1.5",
                     "--order", "1"]) == 0
        assert get_kernel_store().disk is None

    def test_warm_fails_when_flush_cannot_write(self, tmp_path,
                                                monkeypatch, capsys):
        """A warm whose flush is swallowed into disk_write_failures
        must exit nonzero even if the cache file already holds
        entries."""
        from repro.arrays.kernel_disk import DiskKernelCache
        cache_dir = str(tmp_path / "kc")
        assert main(["cache", "warm", "--dir", cache_dir,
                     "--ecds-nm", "35", "--ratios", "1.5",
                     "--order", "1"]) == 0
        capsys.readouterr()

        def broken_write(self, entries):
            raise OSError("disk full")

        monkeypatch.setattr(DiskKernelCache, "write", broken_write)
        assert main(["cache", "warm", "--dir", cache_dir,
                     "--ecds-nm", "45", "--ratios", "1.5",
                     "--order", "1"]) == 1
        assert "cache warm failed" in capsys.readouterr().out

    def test_warm_repairs_corrupt_cache_and_exits_green(self, tmp_path,
                                                        capsys):
        """Warming over a corrupt file is the documented repair path —
        it replaces the file and must NOT report failure."""
        cache_dir = str(tmp_path / "kc")
        assert main(["cache", "warm", "--dir", cache_dir,
                     "--ecds-nm", "35", "--ratios", "1.5",
                     "--order", "1"]) == 0
        from repro.arrays.kernel_disk import DiskKernelCache
        with open(DiskKernelCache(cache_dir).data_path, "r+b") as fh:
            fh.write(b"GARBAGE!")
        capsys.readouterr()
        assert main(["cache", "warm", "--dir", cache_dir,
                     "--ecds-nm", "35", "--ratios", "1.5",
                     "--order", "1"]) == 0
        assert "cache warm failed" not in capsys.readouterr().out
        assert main(["cache", "info", "--dir", cache_dir]) == 0
        assert "valid       True" in capsys.readouterr().out

    def test_warm_preserves_env_attachment_semantics(self, tmp_path,
                                                     monkeypatch):
        """Warming an explicit --dir must not promote an env-attached
        backend to explicit: the env opt-out keeps working after."""
        from repro.arrays.kernel_store import get_kernel_store
        monkeypatch.setenv("REPRO_KERNEL_CACHE",
                           str(tmp_path / "env"))
        get_kernel_store()   # attach from env
        assert main(["cache", "warm", "--dir", str(tmp_path / "other"),
                     "--ecds-nm", "35", "--ratios", "1.5",
                     "--order", "1"]) == 0
        store = get_kernel_store()
        assert store.disk.directory == str(tmp_path / "env")
        monkeypatch.delenv("REPRO_KERNEL_CACHE")
        assert get_kernel_store().disk is None


class TestAuditCommand:
    def _kept_run(self, tmp_path):
        from test_integrity import square_point
        from repro.sweep.distributed import DistributedBroker
        spool = str(tmp_path / "spool")
        broker = DistributedBroker(square_point, spool=spool, jobs=1,
                                   spawn=0, poll=0.02, timeout=60.0,
                                   chunk_size=2, keep_run=True)
        broker.run([{"x": i} for i in range(5)])
        run = [n for n in os.listdir(spool) if n.startswith("run-")][0]
        return spool, os.path.join(spool, run)

    def test_audit_clean_spool_passes(self, tmp_path, capsys):
        spool, _ = self._kept_run(tmp_path)
        assert main(["audit", "--spool", spool]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out and "FAIL" not in out

    def test_audit_detects_flipped_byte(self, tmp_path, capsys):
        spool, run_path = self._kept_run(tmp_path)
        victim = os.path.join(run_path, "results", "chunk-000000.pkl")
        blob = bytearray(open(victim, "rb").read())
        blob[-3] ^= 0x04
        open(victim, "wb").write(bytes(blob))
        assert main(["audit", "--run", run_path]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_audit_canary_alone(self, capsys):
        assert main(["audit", "--canary"]) == 0
        assert "cross-backend-canary" in capsys.readouterr().out

    def test_audit_without_targets_is_usage_error(self, capsys,
                                                  monkeypatch):
        monkeypatch.delenv("REPRO_SWEEP_SPOOL", raising=False)
        assert main(["audit"]) == 2
        assert "nothing to audit" in capsys.readouterr().out

    def test_audit_json_output(self, tmp_path, capsys):
        import json
        spool, _ = self._kept_run(tmp_path)
        assert main(["audit", "--spool", spool, "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["passed"] is True
        assert record["counts"]["fail"] == 0


class TestSpoolCommand:
    def test_requires_spool(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_SWEEP_SPOOL", raising=False)
        assert main(["spool", "fsck"]) == 2
        assert "no spool given" in capsys.readouterr().out

    def test_fsck_detect_then_repair(self, tmp_path, capsys):
        spool, run_path = TestAuditCommand()._kept_run(tmp_path)
        victim = os.path.join(run_path, "results", "chunk-000001.pkl")
        blob = open(victim, "rb").read()
        open(victim, "wb").write(blob[: len(blob) // 2])

        assert main(["spool", "fsck", "--spool", spool]) == 1
        out = capsys.readouterr().out
        assert "torn-result" in out and "found" in out

        assert main(["spool", "fsck", "--spool", spool,
                     "--repair"]) == 0
        assert "repaired" in capsys.readouterr().out

        assert main(["spool", "fsck", "--spool", spool]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_ls_quarantine(self, tmp_path, capsys):
        import json
        qdir = tmp_path / "quarantine"
        qdir.mkdir()
        (qdir / "chunk-000002.json").write_text(json.dumps(
            {"chunk": 2, "error": "ValueError('poison')",
             "error_type": "ValueError", "attempts": 3,
             "workers": ["w1"]}))
        assert main(["spool", "ls-quarantine", "--spool",
                     str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "chunk 2" in out and "ValueError" in out
