"""Tests for the command-line interface."""

from __future__ import annotations

import os

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["psi"])
        assert args.ecd_nm == 35.0
        assert args.target == 0.02


class TestCommands:
    def test_psi(self, capsys):
        assert main(["psi", "--points", "10"]) == 0
        out = capsys.readouterr().out
        assert "Psi vs pitch" in out
        assert "Psi = 2% at pitch" in out

    def test_psi_custom_target(self, capsys):
        assert main(["psi", "--points", "8", "--target", "0.05"]) == 0
        assert "5% at pitch" in capsys.readouterr().out

    def test_design(self, capsys):
        assert main(["design", "--ecds-nm", "35",
                     "--ratios", "1.5,3.0"]) == 0
        out = capsys.readouterr().out
        assert "Psi (%)" in out
        assert out.count("\n") >= 4

    def test_wer(self, capsys):
        assert main(["wer", "--vp", "1.0", "--target", "1e-4",
                     "--samples", "20000"]) == 0
        out = capsys.readouterr().out
        assert "WER=0.0001" in out
        assert "sampled WER" in out

    def test_wer_seed_reproducible(self, capsys):
        argv = ["wer", "--vp", "1.0", "--target", "1e-4",
                "--samples", "20000", "--seed", "5"]
        outputs = []
        for _ in range(2):
            assert main(argv) == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]

    def test_memsys(self, capsys):
        assert main(["memsys", "--pitch-nm", "70", "--pattern",
                     "random", "--ecc", "secded", "--seed", "1",
                     "--rows", "16", "--cols", "16",
                     "--transactions", "2000"]) == 0
        out = capsys.readouterr().out
        assert "raw BER (pre-ECC)" in out
        assert "post-ECC UBER" in out
        assert "pitch sweep" in out
        assert "worst-pattern UBER rises as pitch shrinks" in out

    def test_memsys_seed_reproducible(self, capsys):
        argv = ["memsys", "--seed", "9", "--rows", "16", "--cols",
                "16", "--transactions", "1000"]
        outputs = []
        for _ in range(2):
            assert main(argv) == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]

    def test_memsys_out(self, tmp_path, capsys):
        out_dir = str(tmp_path / "memsys")
        assert main(["memsys", "--seed", "1", "--rows", "16",
                     "--cols", "16", "--transactions", "1000",
                     "--out", out_dir]) == 0
        assert "wrote" in capsys.readouterr().out
        assert os.path.exists(os.path.join(out_dir,
                                           "memsys_run.json"))
        assert os.path.exists(os.path.join(out_dir,
                                           "memsys_sweep.csv"))

    def test_model_card(self, tmp_path, capsys):
        out_dir = str(tmp_path / "card")
        assert main(["model-card", "--out", out_dir,
                     "--name", "cell"]) == 0
        assert os.path.exists(os.path.join(out_dir, "cell.sp"))
        assert "wrote" in capsys.readouterr().out
