"""Tests for the coupling-aware fault analysis."""

from __future__ import annotations

import pytest

from repro.apps import CouplingFaultAnalyzer
from repro.errors import ParameterError


@pytest.fixture
def analyzer(eval_device):
    return CouplingFaultAnalyzer(eval_device, pitch=52.5e-9)


class TestAssessment:
    def test_generous_specs_fault_free(self, analyzer):
        assessment = analyzer.assess(pulse_budget=50e-9,
                                     write_voltage=1.0, min_delta=20.0)
        assert assessment.fault_free
        assert assessment.write_margin_ns > 0
        assert assessment.retention_margin > 0

    def test_tight_pulse_budget_flags_write_fault(self, analyzer):
        assessment = analyzer.assess(pulse_budget=2e-9,
                                     write_voltage=0.85, min_delta=20.0)
        assert assessment.write_fault_possible
        assert not assessment.fault_free

    def test_tight_retention_spec_flags_retention_fault(self, analyzer):
        assessment = analyzer.assess(pulse_budget=50e-9,
                                     write_voltage=1.0, min_delta=60.0)
        assert assessment.retention_fault_possible

    def test_denser_pitch_smaller_margins(self, eval_device):
        dense = CouplingFaultAnalyzer(eval_device, 52.5e-9).assess(
            15e-9, 0.9, 35.0)
        sparse = CouplingFaultAnalyzer(eval_device, 105e-9).assess(
            15e-9, 0.9, 35.0)
        assert dense.write_margin_ns < sparse.write_margin_ns
        assert dense.retention_margin < sparse.retention_margin

    def test_validation(self, analyzer, eval_device):
        with pytest.raises(ParameterError):
            analyzer.assess(-1.0, 0.9, 35.0)
        with pytest.raises(ParameterError):
            CouplingFaultAnalyzer("device", 52.5e-9)


class TestStressPatterns:
    def test_background_is_solid_zero(self, analyzer):
        name, pattern = analyzer.sensitizing_background("write_margin")
        assert name == "solid-0"
        assert pattern.to_int() == 0

    def test_unknown_fault_type(self, analyzer):
        with pytest.raises(ParameterError, match="write_margin"):
            analyzer.sensitizing_background("bitflip")

    def test_stress_data_pattern(self, analyzer):
        pattern = analyzer.stress_data_pattern(8, 8, "retention")
        assert pattern.bits.sum() == 0
        opposite = analyzer.stress_data_pattern(8, 8, "opposite_corner")
        assert opposite.bits.sum() == 64

    def test_stress_background_is_worst_case(self, analyzer,
                                             eval_device):
        """The solid-0 background must indeed maximize tw(AP->P)."""
        from repro.arrays import VictimAnalysis
        from repro.arrays.pattern import NeighborhoodPattern
        victim = VictimAnalysis(eval_device, 52.5e-9)
        tw_solid0 = victim.switching_time(
            0.9, NeighborhoodPattern.from_int(0))
        for np8 in (15, 85, 170, 255):
            tw = victim.switching_time(
                0.9, NeighborhoodPattern.from_int(np8))
            assert tw_solid0 >= tw


class TestMarchTest:
    def test_structure(self, analyzer):
        elements = analyzer.march_test(0.9)
        assert elements[0] == "{ up (w0) }"
        assert any("pause" in e for e in elements)
        assert any("r0" in e for e in elements)
        assert any("r1" in e for e in elements)

    def test_pause_bounded(self, analyzer):
        pause = analyzer._retention_pause()
        assert 1.0 <= pause <= 1.0e4

    def test_sweep_pitches(self, analyzer):
        assessments = analyzer.sweep_pitches(
            [52.5e-9, 70e-9, 105e-9], 15e-9, 0.9, 35.0)
        assert len(assessments) == 3
        margins = [a.retention_margin for a in assessments]
        assert margins[0] < margins[1] < margins[2]
