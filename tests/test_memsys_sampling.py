"""Tests for the rare-event sampling fast path.

Three layers: the packed bit-plane state, the class-grouped /
thinned samplers and incremental class maps, and the end-to-end
statistical equivalence of ``sampler="binomial"`` against the
``bernoulli`` reference engine.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.memsys import build_engine
from repro.memsys.bitplane import (
    BitPlane,
    _popcount_rows_table,
    pack_bits,
    popcount_rows,
    unpack_bits,
)
from repro.memsys.controller import neighborhood_class_map
from repro.memsys.engine import _PackedState
from repro.memsys.sampling import (
    IncrementalClassMaps,
    N_CLASSES,
    class_index,
    sample_class_flips,
    sample_thinned_flips,
    validate_sampler,
)


@pytest.fixture(scope="module")
def device():
    from repro.device import MTJDevice, PAPER_EVAL_DEVICE
    return MTJDevice(PAPER_EVAL_DEVICE)


class TestBitPlane:
    def test_pack_unpack_round_trip(self):
        rng = np.random.default_rng(0)
        bits = (rng.random((37, 72)) < 0.5).astype(np.int8)
        assert np.array_equal(unpack_bits(pack_bits(bits), 72), bits)

    def test_from_to_bits_round_trip_with_tail(self):
        rng = np.random.default_rng(1)
        flat = (rng.random(24 * 36) < 0.5).astype(np.int8)
        plane = BitPlane.from_bits(flat, n_words=12, code_bits=71)
        assert plane.tail.size == 24 * 36 - 12 * 71
        assert np.array_equal(plane.to_bits(), flat)

    def test_word_set_and_get(self):
        plane = BitPlane(n_words=5, code_bits=72, n_cells=5 * 72)
        rng = np.random.default_rng(2)
        bits = (rng.random((2, 72)) < 0.5).astype(np.int8)
        plane.set_words(np.array([1, 4]), bits)
        assert np.array_equal(plane.word_bits(np.array([1, 4])), bits)
        assert plane.word_bits(np.array([0])).sum() == 0

    def test_toggle_and_get_cells_mapped_and_tail(self):
        flat = np.zeros(100, dtype=np.int8)
        plane = BitPlane.from_bits(flat, n_words=1, code_bits=72)
        idx = np.array([0, 63, 64, 71, 72, 99])  # lanes 0/1 + tail
        plane.toggle_cells(idx)
        assert np.array_equal(plane.get_cells(idx), np.ones(6, np.int8))
        ref = flat.copy()
        ref[idx] ^= 1
        assert np.array_equal(plane.to_bits(), ref)
        plane.toggle_cells(idx)  # toggling back restores zeros
        assert plane.to_bits().sum() == 0

    def test_toggle_repeated_index_semantics(self):
        plane = BitPlane.from_bits(np.zeros(72, np.int8), 1, 72)
        plane.toggle_cells(np.array([3, 3, 5]))  # 3 toggles twice
        assert plane.get_cells(np.array([3]))[0] == 0
        assert plane.get_cells(np.array([5]))[0] == 1

    def test_diff_counts_matches_dense(self):
        rng = np.random.default_rng(3)
        a = (rng.random(7 * 72) < 0.5).astype(np.int8)
        b = (rng.random(7 * 72) < 0.5).astype(np.int8)
        pa = BitPlane.from_bits(a, 7, 72)
        pb = BitPlane.from_bits(b, 7, 72)
        dense = (a != b).reshape(7, 72).sum(axis=1)
        assert np.array_equal(pa.diff_counts(pb), dense)
        sub = np.array([2, 5])
        assert np.array_equal(pa.diff_counts(pb, sub), dense[sub])

    def test_popcount_table_matches_hardware_path(self):
        rng = np.random.default_rng(4)
        lanes = rng.integers(0, 2**63, size=(50, 3)).astype(np.uint64)
        assert np.array_equal(popcount_rows(lanes),
                              _popcount_rows_table(lanes))

    def test_popcount_table_wide_and_degenerate_rows(self):
        """Both accumulation strategies (column loop for narrow rows,
        one gather past 32 byte columns) and the empty edge agree."""
        rng = np.random.default_rng(5)
        for n_lanes in (1, 4, 5, 16):
            lanes = rng.integers(0, 2**63,
                                 size=(20, n_lanes)).astype(np.uint64)
            expect = [bin(int(v)).count("1") for row in lanes
                      for v in [sum(int(x) << (64 * i)
                                    for i, x in enumerate(row))]]
            assert np.array_equal(_popcount_rows_table(lanes), expect)
        empty = np.zeros((0, 2), dtype=np.uint64)
        assert _popcount_rows_table(empty).shape == (0,)

    def test_too_many_words_raises(self):
        with pytest.raises(ParameterError):
            BitPlane(n_words=3, code_bits=72, n_cells=100)


class TestSamplers:
    def test_validate_sampler(self):
        assert validate_sampler("binomial") == "binomial"
        with pytest.raises(ParameterError):
            validate_sampler("gaussian")

    def test_class_index_matches_table_layout(self):
        rng = np.random.default_rng(0)
        table = rng.random((2, 5, 5))
        bits = rng.integers(0, 2, size=300)
        nd = rng.integers(0, 5, size=300)
        ng = rng.integers(0, 5, size=300)
        ci = class_index(bits, nd, ng)
        assert ci.min() >= 0 and ci.max() < N_CLASSES
        assert np.array_equal(table.reshape(-1)[ci],
                              table[bits, nd, ng])

    def test_class_flips_p_zero_and_one(self):
        rng = np.random.default_rng(1)
        ci = np.asarray(class_index(
            rng.integers(0, 2, 500), rng.integers(0, 5, 500),
            rng.integers(0, 5, 500)))
        assert sample_class_flips(ci, np.zeros(N_CLASSES), rng).size == 0
        flips = sample_class_flips(ci, np.ones(N_CLASSES), rng)
        assert np.array_equal(np.sort(flips), np.arange(500))

    def test_class_flips_respect_class_membership(self):
        """Flips land only in cells of classes with p > 0."""
        rng = np.random.default_rng(2)
        ci = np.asarray(class_index(
            rng.integers(0, 2, 2000), rng.integers(0, 5, 2000),
            rng.integers(0, 5, 2000)))
        target = int(ci[0])
        p = np.zeros(N_CLASSES)
        p[target] = 0.5
        flips = sample_class_flips(ci, p, rng)
        assert flips.size > 0
        assert np.all(ci[flips] == target)

    def test_class_flips_deterministic_under_seed(self):
        ci = np.asarray(class_index(
            np.ones(300, int), np.full(300, 2), np.full(300, 3)))
        p = np.full(N_CLASSES, 0.1)
        a = sample_class_flips(ci, p, np.random.default_rng(7))
        b = sample_class_flips(ci, p, np.random.default_rng(7))
        assert np.array_equal(a, b)

    def test_class_flips_statistics(self):
        """Flip counts follow Binomial(n, p) within a 6-sigma band."""
        n, p_flip = 20_000, 0.3
        ci = np.zeros(n, dtype=np.int8)
        p = np.zeros(N_CLASSES)
        p[0] = p_flip
        rng = np.random.default_rng(3)
        counts = [sample_class_flips(ci, p, rng).size
                  for _ in range(30)]
        mean = np.mean(counts)
        se = np.sqrt(n * p_flip * (1 - p_flip) / len(counts))
        assert abs(mean - n * p_flip) < 6 * se

    def test_thinned_matches_class_grouped_statistics(self):
        """Thinned and class-grouped draws agree in law."""
        rng = np.random.default_rng(4)
        n = 10_000
        ci = np.asarray(class_index(
            rng.integers(0, 2, n), rng.integers(0, 5, n),
            rng.integers(0, 5, n)))
        p = np.linspace(0.0, 0.2, N_CLASSES)
        expected = p[ci].sum()
        grouped = np.mean([
            sample_class_flips(ci, p, rng).size for _ in range(25)])
        thinned = np.mean([
            sample_thinned_flips(n, p, lambda cand: ci[cand],
                                 rng).size
            for _ in range(25)])
        se = np.sqrt(expected / 25)
        assert abs(grouped - expected) < 6 * se
        assert abs(thinned - expected) < 6 * se

    def test_thinned_classifies_only_candidates(self):
        """The class_of callback sees candidate indices, not the
        whole population — the point of the thinned variant."""
        seen = []

        def class_of(cand):
            seen.append(cand.size)
            return np.zeros(cand.size, dtype=np.int8)

        p = np.zeros(N_CLASSES)
        p[0] = 1e-3
        rng = np.random.default_rng(5)
        n = 100_000
        flips = sample_thinned_flips(n, p, class_of, rng)
        assert flips.size > 0
        assert sum(seen) < n // 10  # classified a tiny fraction

    def test_thinned_p_zero(self):
        rng = np.random.default_rng(6)
        out = sample_thinned_flips(
            1000, np.zeros(N_CLASSES),
            lambda cand: np.zeros(cand.size, np.int8), rng)
        assert out.size == 0


def _assert_maps_match_recompute(maps, plane, rows, cols):
    bits = plane.to_bits()
    nd2, ng2 = neighborhood_class_map(bits.reshape(rows, cols))
    assert np.array_equal(maps.nd, nd2.reshape(-1))
    assert np.array_equal(maps.ng, ng2.reshape(-1))
    ci = class_index(bits, maps.nd, maps.ng)
    assert np.array_equal(maps.class_idx, ci)
    assert np.array_equal(maps.hist,
                          np.bincount(ci, minlength=N_CLASSES))


class TestIncrementalClassMaps:
    ROWS, COLS, CODE = 24, 36, 72

    def _fresh(self, rng):
        n_cells = self.ROWS * self.COLS
        bits = (rng.random(n_cells) < 0.5).astype(np.int8)
        plane = BitPlane.from_bits(bits, n_cells // self.CODE,
                                   self.CODE)
        return plane, IncrementalClassMaps(self.ROWS, self.COLS, plane)

    def test_incremental_matches_recompute(self):
        """Sparse toggles through both the scalar (<= 8 changes) and
        vectorized update paths stay exactly equal to a full
        recompute."""
        rng = np.random.default_rng(0)
        plane, maps = self._fresh(rng)
        for k in (1, 2, 5, 8, 9, 13, 3, 11):
            idx = rng.choice(plane.n_cells, size=k, replace=False)
            plane.toggle_cells(idx)
            maps.refresh(plane)
            _assert_maps_match_recompute(maps, plane, self.ROWS,
                                         self.COLS)
        assert maps.rebuilds == 1  # only the constructor's build
        assert maps.incremental_refreshes == 8

    def test_dense_change_falls_back_to_rebuild(self):
        rng = np.random.default_rng(1)
        plane, maps = self._fresh(rng)
        idx = rng.choice(plane.n_cells, size=plane.n_cells // 3,
                         replace=False)
        plane.toggle_cells(idx)
        maps.refresh(plane)
        assert maps.rebuilds == 2
        assert maps.incremental_refreshes == 0
        _assert_maps_match_recompute(maps, plane, self.ROWS, self.COLS)

    def test_refresh_without_changes_is_noop(self):
        rng = np.random.default_rng(2)
        plane, maps = self._fresh(rng)
        hist_before = maps.hist.copy()
        maps.refresh(plane)
        assert maps.rebuilds == 1
        assert maps.incremental_refreshes == 0
        assert np.array_equal(maps.hist, hist_before)

    def test_cell_classes_uses_frozen_neighbors(self):
        rng = np.random.default_rng(3)
        plane, maps = self._fresh(rng)
        cells = rng.choice(plane.n_mapped, size=40, replace=False)
        bits = rng.integers(0, 2, size=40)
        expected = class_index(bits, maps.nd[cells], maps.ng[cells])
        assert np.array_equal(maps.cell_classes(bits, cells), expected)

    def test_shape_mismatch_raises(self):
        plane = BitPlane.from_bits(np.zeros(100, np.int8), 1, 72)
        with pytest.raises(ParameterError):
            IncrementalClassMaps(7, 7, plane)


class _StubTables:
    """Minimal controller stand-in: just the per-class table views."""

    def wer_class_probability(self):
        return np.full(N_CLASSES, 1e-3)

    def disturb_class_probability(self):
        return np.full(N_CLASSES, 1e-4)


class TestPackedState:
    def _state(self, rng, n_words=6, code=72, n_cells=None):
        n_cells = n_cells or n_words * code + 17
        bits = (rng.random(n_cells) < 0.5).astype(np.int8)
        intended = BitPlane.from_bits(bits, n_words, code)
        maps = None  # not needed for counter bookkeeping
        return _PackedState(intended, intended.copy(), maps,
                            _StubTables())

    def _check_invariant(self, state):
        truth = state.actual.diff_counts(state.intended)
        assert np.array_equal(state.err_count, truth)
        assert state.wrong_bits == int(truth.sum())

    def test_err_count_tracks_ground_truth(self):
        rng = np.random.default_rng(0)
        state = self._state(rng)
        n_mapped = state.actual.n_mapped
        # toggles (mapped + tail), writes with injected errors,
        # restores — the counter must match XOR+popcount throughout.
        state.toggle(np.array([0, 65, 71, 72, n_mapped + 3]))
        self._check_invariant(state)
        cw = (rng.random((2, 72)) < 0.5).astype(np.int8)
        flip_cells = np.array([1 * 72 + 7])  # one error in word 1
        state.write_words(np.array([1, 4]), cw, flip_cells)
        self._check_invariant(state)
        assert state.err_count[1] == 1 and state.err_count[4] == 0
        state.restore_words(np.array([1]),
                            np.empty(0, dtype=np.intp))
        self._check_invariant(state)
        assert state.err_count[1] == 0
        # toggling a wrong cell back rights it
        state.toggle(np.array([0]))
        state.toggle(np.array([0]))
        self._check_invariant(state)

    def test_random_walk_invariant(self):
        rng = np.random.default_rng(1)
        state = self._state(rng, n_words=4)
        for _ in range(40):
            op = rng.integers(0, 3)
            if op == 0:
                k = int(rng.integers(1, 6))
                idx = rng.choice(state.actual.n_cells, size=k,
                                 replace=False)
                state.toggle(idx)
            elif op == 1:
                w = rng.choice(4, size=2, replace=False)
                cw = (rng.random((2, 72)) < 0.5).astype(np.int8)
                cell = int(w[0]) * 72 + int(rng.integers(0, 72))
                state.write_words(w, cw, np.array([cell]))
            else:
                w = rng.choice(4, size=1)
                state.restore_words(w, np.empty(0, dtype=np.intp))
            self._check_invariant(state)


class TestEngineEquivalence:
    def test_expected_rates_bit_identical(self, device):
        rates = [
            build_engine(device, pitch=70e-9, rows=16, cols=16,
                         sampler=sampler).expected_rates(rng=0)
            for sampler in ("bernoulli", "binomial")]
        assert rates[0] == rates[1]

    def test_binomial_deterministic_under_seed(self, device):
        runs = [build_engine(device, pitch=70e-9, rows=16, cols=16,
                             sampler="binomial").run(3000, rng=7)
                for _ in range(2)]
        assert runs[0].raw_bit_errors == runs[1].raw_bit_errors
        assert runs[0].write_errors == runs[1].write_errors
        assert runs[0].uber == runs[1].uber

    def test_binomial_counters_consistent(self, device):
        engine = build_engine(device, pitch=70e-9, rows=16, cols=16,
                              sampler="binomial")
        result = engine.run(5000, rng=1)
        assert result.n_transactions == 5000
        assert result.n_reads + result.n_writes == 5000
        assert result.bits_read == result.n_reads * 72
        word_counts = (result.words_ok + result.words_corrected
                       + result.words_detected + result.words_silent)
        assert word_counts == result.n_reads
        assert result.uncorrectable_bit_errors <= result.raw_bit_errors
        assert 0.0 < result.raw_ber < 1.0
        assert result.uber <= result.raw_ber
        assert result.config["sampler"] == "binomial"

    def test_counters_statistically_equivalent(self, device):
        """Seeded bernoulli vs binomial totals agree within a
        binomial-CI tolerance (aggregated over seeds so per-seed noise
        averages out)."""
        totals = {}
        for sampler in ("bernoulli", "binomial"):
            acc = dict(write_errors=0, disturb_flips=0,
                       retention_flips=0, words_corrected=0)
            for seed in range(4):
                engine = build_engine(
                    device, pitch=52.5e-9, rows=32, cols=32,
                    workload="read-heavy", temperature=400.0,
                    cycle_time=1e-5, sampler=sampler)
                result = engine.run(15_000, rng=seed)
                for key in acc:
                    acc[key] += getattr(result, key)
            totals[sampler] = acc
        for key in totals["bernoulli"]:
            a = totals["bernoulli"][key]
            b = totals["binomial"][key]
            tol = 6.0 * np.sqrt(a + b + 1.0) + 10.0
            assert abs(a - b) <= tol, (key, a, b)

    def test_binomial_scrub_and_retention_corner(self, device):
        """The packed path books scrubs and retention flips too."""
        from repro.memsys import ScrubPolicy
        engine = build_engine(
            device, pitch=52.5e-9, rows=16, cols=16,
            workload="read-heavy", temperature=420.0, cycle_time=1e-4,
            nominal_wer=1e-4, scrub=ScrubPolicy(0.05),
            sampler="binomial")
        result = engine.run(12_000, rng=9, batch_size=500)
        assert result.retention_flips > 0
        assert result.n_scrubs > 0

    def test_binomial_secded_beats_no_ecc(self, device):
        uber = {}
        for ecc in ("none", "secded"):
            engine = build_engine(device, pitch=70e-9, rows=16,
                                  cols=16, ecc=ecc, sampler="binomial")
            uber[ecc] = engine.run(20_000, rng=11).uber
        assert 0.0 < uber["secded"] < uber["none"]

    def test_bad_sampler_raises(self, device):
        with pytest.raises(ParameterError):
            build_engine(device, pitch=70e-9, rows=16, cols=16,
                         sampler="gaussian")

    def test_zero_interval_retention_probability(self, device):
        """interval == 0 is a valid zero-dwell window (satellite)."""
        engine = build_engine(device, pitch=70e-9, rows=16, cols=16)
        ctl = engine.controller
        bits = np.zeros(4, dtype=np.int8)
        nd = ng = np.zeros(4, dtype=np.int8)
        p = ctl.retention_flip_probability(bits, nd, ng, 0.0)
        assert np.all(p == 0.0)
        assert np.all(ctl.retention_class_probability(0.0) == 0.0)
