"""Tests for the retention bake-test emulation."""

from __future__ import annotations

import pytest

from repro.characterization import (
    delta_from_bake,
    plan_bake,
    run_bake_test,
)
from repro.characterization.bake import BakeResult
from repro.device import MTJDevice, MTJState, PAPER_EVAL_DEVICE
from repro.errors import MeasurementError, ParameterError
from repro.units import celsius_to_kelvin


@pytest.fixture(scope="module")
def device():
    return MTJDevice(PAPER_EVAL_DEVICE)


class TestBakeEmulation:
    def test_planned_bake_hits_target_fraction(self, device):
        temp = celsius_to_kelvin(150.0)
        duration = plan_bake(device, 0.3, temp)
        result = run_bake_test(device, temp, duration, n_bits=20_000,
                               rng=3)
        assert result.fail_fraction == pytest.approx(0.3, abs=0.03)

    def test_longer_bake_more_failures(self, device):
        temp = celsius_to_kelvin(150.0)
        base = plan_bake(device, 0.2, temp)
        short = run_bake_test(device, temp, base, n_bits=20_000, rng=4)
        long = run_bake_test(device, temp, 5 * base, n_bits=20_000,
                             rng=4)
        assert long.n_failed > short.n_failed

    def test_hotter_bake_more_failures(self, device):
        duration = plan_bake(device, 0.2, celsius_to_kelvin(150.0))
        cool = run_bake_test(device, celsius_to_kelvin(125.0), duration,
                             n_bits=20_000, rng=5)
        hot = run_bake_test(device, celsius_to_kelvin(150.0), duration,
                            n_bits=20_000, rng=5)
        assert hot.n_failed > cool.n_failed

    def test_ap_state_more_stable(self, device):
        # Under the negative intra-cell field Delta_AP > Delta_P: the AP
        # bake must fail less.
        temp = celsius_to_kelvin(150.0)
        duration = plan_bake(device, 0.3, temp, state=MTJState.P)
        p_bake = run_bake_test(device, temp, duration, n_bits=20_000,
                               state=MTJState.P, rng=6)
        ap_bake = run_bake_test(device, temp, duration, n_bits=20_000,
                                state=MTJState.AP, rng=6)
        assert ap_bake.n_failed < p_bake.n_failed

    def test_validation(self, device):
        with pytest.raises(ParameterError):
            run_bake_test("device", 400.0, 1.0)
        with pytest.raises(ParameterError):
            plan_bake(device, 1.5, 400.0)


class TestDeltaInversion:
    def test_recovers_injected_delta(self, device):
        temp = celsius_to_kelvin(150.0)
        stray = device.intra_stray_field()
        true_delta = device.delta(MTJState.P, stray, temperature=temp)
        duration = plan_bake(device, 0.3, temp)
        result = run_bake_test(device, temp, duration, n_bits=50_000,
                               rng=7)
        estimate = delta_from_bake(
            result, attempt_frequency=device.params.attempt_frequency)
        assert estimate == pytest.approx(true_delta, abs=0.15)

    def test_no_failures_uninformative(self):
        result = BakeResult(temperature=400.0, duration=1.0,
                            n_bits=100, n_failed=0)
        with pytest.raises(MeasurementError):
            delta_from_bake(result)

    def test_all_failures_uninformative(self):
        result = BakeResult(temperature=400.0, duration=1.0,
                            n_bits=100, n_failed=100)
        with pytest.raises(MeasurementError):
            delta_from_bake(result)
