"""Memoized-results cache: LRU bounds, disk tier, corruption."""

import json
import os

import pytest

from repro.errors import ParameterError
from repro.service.results_cache import RESULTS_SUBDIR, ResultsCache

KEY_A = "a" * 32
KEY_B = "b" * 32
KEY_C = "c" * 32


class TestMemoryTier:
    def test_miss_then_hit(self):
        cache = ResultsCache(capacity=4, directory=False)
        assert cache.get(KEY_A) is None
        cache.put(KEY_A, {"uber": 1e-9})
        assert cache.get(KEY_A) == {"uber": 1e-9}
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1

    def test_lru_evicts_oldest(self):
        cache = ResultsCache(capacity=2, directory=False)
        cache.put(KEY_A, {"v": 1})
        cache.put(KEY_B, {"v": 2})
        cache.get(KEY_A)              # A is now most recent
        cache.put(KEY_C, {"v": 3})    # evicts B
        assert cache.get(KEY_B) is None
        assert cache.get(KEY_A) == {"v": 1}
        assert cache.get(KEY_C) == {"v": 3}
        assert cache.stats()["memory_entries"] == 2

    def test_rejects_bad_keys(self):
        cache = ResultsCache(capacity=2, directory=False)
        for bad in ("short", "Z" * 32, 123, None):
            with pytest.raises(ParameterError):
                cache.get(bad)

    def test_rejects_non_dict_payloads(self):
        cache = ResultsCache(capacity=2, directory=False)
        with pytest.raises(ParameterError):
            cache.put(KEY_A, [1, 2, 3])

    def test_rejects_bad_capacity(self):
        with pytest.raises(ParameterError):
            ResultsCache(capacity=0)

    def test_clear_drops_memory(self):
        cache = ResultsCache(capacity=2, directory=False)
        cache.put(KEY_A, {"v": 1})
        cache.clear()
        assert cache.get(KEY_A) is None


class TestDiskTier:
    def test_survives_restart(self, tmp_path):
        first = ResultsCache(capacity=4, directory=str(tmp_path))
        first.put(KEY_A, {"uber": 2e-9})
        second = ResultsCache(capacity=4, directory=str(tmp_path))
        assert second.get(KEY_A) == {"uber": 2e-9}
        stats = second.stats()
        assert stats["disk_hits"] == 1
        assert stats["hits"] == 1

    def test_disk_hit_promotes_to_memory(self, tmp_path):
        ResultsCache(capacity=4, directory=str(tmp_path)).put(
            KEY_A, {"v": 1})
        cache = ResultsCache(capacity=4, directory=str(tmp_path))
        cache.get(KEY_A)
        os.unlink(tmp_path / f"{KEY_A}.json")
        assert cache.get(KEY_A) == {"v": 1}   # memory now serves it

    def test_eviction_keeps_disk_copy(self, tmp_path):
        cache = ResultsCache(capacity=1, directory=str(tmp_path))
        cache.put(KEY_A, {"v": 1})
        cache.put(KEY_B, {"v": 2})            # evicts A from memory
        assert cache.get(KEY_A) == {"v": 1}   # disk still has it
        assert cache.stats()["disk_hits"] == 1

    def test_corrupt_file_is_a_miss_and_removed(self, tmp_path):
        cache = ResultsCache(capacity=4, directory=str(tmp_path))
        path = tmp_path / f"{KEY_A}.json"
        path.write_text("{ not json")
        assert cache.get(KEY_A) is None
        assert not path.exists()
        assert cache.stats()["disk_corrupt"] == 1

    def test_non_dict_disk_payload_counts_as_corrupt(self, tmp_path):
        cache = ResultsCache(capacity=4, directory=str(tmp_path))
        (tmp_path / f"{KEY_A}.json").write_text("[1, 2, 3]")
        assert cache.get(KEY_A) is None
        assert cache.stats()["disk_corrupt"] == 1

    def test_unwritable_directory_is_not_fatal(self, tmp_path):
        blocked = tmp_path / "file-not-dir"
        blocked.write_text("x")
        cache = ResultsCache(capacity=4,
                             directory=str(blocked / "sub"))
        cache.put(KEY_A, {"v": 1})            # swallowed
        assert cache.get(KEY_A) == {"v": 1}   # memory tier serves
        assert cache.stats()["disk_write_failures"] == 1

    def test_entries_counted(self, tmp_path):
        cache = ResultsCache(capacity=4, directory=str(tmp_path))
        cache.put(KEY_A, {"v": 1})
        cache.put(KEY_B, {"v": 2})
        assert cache.stats()["disk_entries"] == 2

    def test_atomic_writes_leave_no_tmp_files(self, tmp_path):
        cache = ResultsCache(capacity=4, directory=str(tmp_path))
        cache.put(KEY_A, {"v": 1})
        assert [p.name for p in tmp_path.iterdir()] == [
            f"{KEY_A}.json"]
        envelope = json.loads((tmp_path / f"{KEY_A}.json").read_text())
        assert envelope["v"] == 1
        assert envelope["fingerprint"] == KEY_A
        assert envelope["payload"] == {"v": 1}
        assert isinstance(envelope["stored_at"], float)
        assert isinstance(envelope["sha256"], str)


class _FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def time(self):
        return self.now


class TestTtlAndStale:
    def test_fresh_entry_within_ttl_hits(self):
        clock = _FakeClock()
        cache = ResultsCache(capacity=4, directory=False, clock=clock)
        cache.put(KEY_A, {"v": 1})
        clock.now += 5.0
        assert cache.get(KEY_A, max_age=10.0) == {"v": 1}

    def test_expired_entry_is_counted_miss_but_retained(self):
        clock = _FakeClock()
        cache = ResultsCache(capacity=4, directory=False, clock=clock)
        cache.put(KEY_A, {"v": 1})
        clock.now += 100.0
        assert cache.get(KEY_A, max_age=10.0) is None
        stats = cache.stats()
        assert stats["expired"] == 1 and stats["misses"] == 1
        # The entry survives for degraded serving.
        assert cache.get_stale(KEY_A, 500.0) == ({"v": 1}, 100.0)
        # And without a TTL it still reads normally.
        assert cache.get(KEY_A) == {"v": 1}

    def test_stale_respects_its_own_ttl(self):
        clock = _FakeClock()
        cache = ResultsCache(capacity=4, directory=False, clock=clock)
        cache.put(KEY_A, {"v": 1})
        clock.now += 1000.0
        assert cache.get_stale(KEY_A, 500.0) is None
        assert cache.stats()["stale_hits"] == 0

    def test_stale_requires_positive_ttl(self):
        cache = ResultsCache(capacity=4, directory=False)
        with pytest.raises(ParameterError):
            cache.get_stale(KEY_A, 0)

    def test_stale_reverifies_digest(self):
        """A memory entry whose payload no longer matches its digest
        is dropped, not served — a degraded answer must still be a
        correct stale answer."""
        clock = _FakeClock()
        cache = ResultsCache(capacity=4, directory=False, clock=clock)
        cache.put(KEY_A, {"v": 1})
        payload, stored_at, digest = cache._memory[KEY_A]
        payload["v"] = 2  # in-place tamper behind the digest's back
        assert cache.get_stale(KEY_A, 500.0) is None
        assert cache.stats()["stale_rejects"] == 1
        assert KEY_A not in cache._memory

    def test_promotion_does_not_rejuvenate(self, tmp_path):
        """A disk entry promoted into memory keeps its original store
        time — a restart must not reset every TTL."""
        clock = _FakeClock()
        cache = ResultsCache(capacity=4, directory=str(tmp_path),
                             clock=clock)
        cache.put(KEY_A, {"v": 1})
        clock.now += 100.0
        fresh = ResultsCache(capacity=4, directory=str(tmp_path),
                             clock=clock)
        assert fresh.get(KEY_A, max_age=10.0) is None
        assert fresh.get_stale(KEY_A, 500.0) == ({"v": 1}, 100.0)

    def test_rejects_bad_clock(self):
        with pytest.raises(ParameterError):
            ResultsCache(clock=42)


class TestEnvironmentDerivation:
    def test_follows_kernel_cache_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_CACHE", str(tmp_path))
        cache = ResultsCache(capacity=4)
        assert cache.directory == str(tmp_path / RESULTS_SUBDIR)
        cache.put(KEY_A, {"v": 1})
        assert (tmp_path / RESULTS_SUBDIR / f"{KEY_A}.json").exists()

    def test_memory_only_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL_CACHE", raising=False)
        cache = ResultsCache(capacity=4)
        assert cache.directory is None
        assert cache.stats()["disk_entries"] is None

    def test_explicit_false_disables_disk(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_CACHE", str(tmp_path))
        cache = ResultsCache(capacity=4, directory=False)
        cache.put(KEY_A, {"v": 1})
        assert not (tmp_path / RESULTS_SUBDIR).exists()
