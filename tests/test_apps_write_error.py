"""Tests for the write-error-rate model."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.apps import WriteErrorModel
from repro.device import MTJState
from repro.errors import ParameterError


@pytest.fixture
def wer_model(eval_device):
    return WriteErrorModel(eval_device)


@pytest.fixture
def hz_intra(eval_device):
    return eval_device.intra_stray_field()


class TestWerCurve:
    def test_monotone_decreasing_in_pulse(self, wer_model, hz_intra):
        pulses = np.array([2e-9, 5e-9, 10e-9, 20e-9, 40e-9])
        wer = wer_model.wer(pulses, vp=0.9, hz_stray=hz_intra)
        assert np.all(np.diff(wer) < 0)

    def test_bounds(self, wer_model, hz_intra):
        pulses = np.linspace(1e-10, 100e-9, 30)
        wer = wer_model.wer(pulses, vp=1.0, hz_stray=hz_intra)
        assert np.all((wer >= 0.0) & (wer <= 1.0))

    def test_short_pulse_always_fails(self, wer_model, hz_intra):
        assert wer_model.wer(1e-12, vp=0.9,
                             hz_stray=hz_intra) == pytest.approx(1.0)

    def test_below_threshold_certain_failure(self, wer_model, hz_intra):
        assert wer_model.wer(100e-9, vp=0.1,
                             hz_stray=hz_intra) == pytest.approx(1.0)

    def test_higher_voltage_lower_wer(self, wer_model, hz_intra):
        lo = wer_model.wer(10e-9, vp=0.85, hz_stray=hz_intra)
        hi = wer_model.wer(10e-9, vp=1.1, hz_stray=hz_intra)
        assert hi < lo

    def test_mean_time_near_half_error_point(self, wer_model, hz_intra):
        """At t = mean tw the WER is order-1/2 (the distribution median
        and mean are close on the log scale)."""
        tw = wer_model.mean_switching_time(0.9, hz_intra)
        wer_at_mean = wer_model.wer(tw, vp=0.9, hz_stray=hz_intra)
        assert 0.2 < wer_at_mean < 0.8

    def test_negative_pulse_rejected(self, wer_model):
        with pytest.raises(ParameterError):
            wer_model.wer(-1e-9, vp=0.9)

    def test_rejects_non_device(self):
        with pytest.raises(ParameterError):
            WriteErrorModel("device")


class TestPulseSizing:
    def test_inverse_roundtrip(self, wer_model, hz_intra):
        target = 1e-6
        pulse = wer_model.pulse_for_wer(target, vp=0.95,
                                        hz_stray=hz_intra)
        assert wer_model.wer(pulse, vp=0.95,
                             hz_stray=hz_intra) == pytest.approx(
            target, rel=1e-6)

    def test_tighter_target_longer_pulse(self, wer_model, hz_intra):
        loose = wer_model.pulse_for_wer(1e-3, vp=0.95,
                                        hz_stray=hz_intra)
        tight = wer_model.pulse_for_wer(1e-9, vp=0.95,
                                        hz_stray=hz_intra)
        assert tight > loose

    def test_below_threshold_rejected(self, wer_model, hz_intra):
        with pytest.raises(ParameterError):
            wer_model.pulse_for_wer(1e-6, vp=0.1, hz_stray=hz_intra)

    def test_pulse_scale_is_nanoseconds(self, wer_model, hz_intra):
        pulse = wer_model.pulse_for_wer(1e-6, vp=0.95,
                                        hz_stray=hz_intra)
        assert 1e-9 < pulse < 200e-9


class TestSampledWer:
    def test_binomial_matches_closed_form(self, wer_model, hz_intra):
        """The class-grouped count draw sits within MC error of the
        closed form (it draws Binomial(n, wer))."""
        closed = wer_model.wer(10e-9, vp=0.9, hz_stray=hz_intra)
        sampled = wer_model.sample_wer(10e-9, 0.9, hz_intra,
                                       n_samples=100_000, rng=1)
        se = math.sqrt(closed * (1.0 - closed) / 100_000)
        assert abs(sampled - closed) < 6.0 * se + 1e-12

    def test_angles_reference_matches_closed_form(self, wer_model,
                                                  hz_intra):
        """The per-sample angle path remains the distributional
        cross-check: initial-angle draws reproduce the closed form."""
        closed = wer_model.wer(10e-9, vp=0.9, hz_stray=hz_intra)
        sampled = wer_model.sample_wer(10e-9, 0.9, hz_intra,
                                       n_samples=100_000, rng=1,
                                       method="angles")
        se = math.sqrt(closed * (1.0 - closed) / 100_000)
        assert abs(sampled - closed) < 6.0 * se + 1e-12

    def test_methods_statistically_equivalent_at_rare_target(
            self, wer_model, hz_intra):
        """At a production-like rare-event corner the binomial draw is
        usable (the angle path would need ~1e8 draws to see a count)."""
        pulse = wer_model.pulse_for_wer(1e-4, vp=0.95,
                                        hz_stray=hz_intra)
        n = 2_000_000
        sampled = wer_model.sample_wer(pulse, 0.95, hz_intra,
                                       n_samples=n, rng=7)
        assert abs(sampled - 1e-4) < 6.0 * math.sqrt(1e-4 / n)

    def test_below_threshold_is_certain_failure(self, wer_model,
                                                hz_intra):
        assert wer_model.sample_wer(10e-9, 0.1, hz_intra,
                                    n_samples=100, rng=0) == 1.0

    def test_seeded_draws_are_deterministic(self, wer_model, hz_intra):
        draws = [wer_model.sample_wer(10e-9, 0.9, hz_intra,
                                      n_samples=10_000, rng=3)
                 for _ in range(2)]
        assert draws[0] == draws[1]

    def test_rejects_unknown_method(self, wer_model, hz_intra):
        with pytest.raises(ParameterError):
            wer_model.sample_wer(10e-9, 0.9, hz_intra,
                                 method="bogus")


class TestWorstCase:
    def test_worst_case_longer_than_best(self, wer_model, eval_device):
        pitch = 1.5 * eval_device.params.ecd
        penalty = wer_model.pattern_pulse_penalty(1e-6, 0.95, pitch)
        assert penalty > 0

    def test_penalty_shrinks_with_pitch(self, wer_model, eval_device):
        ecd = eval_device.params.ecd
        dense = wer_model.pattern_pulse_penalty(1e-6, 0.95, 1.5 * ecd)
        sparse = wer_model.pattern_pulse_penalty(1e-6, 0.95, 3.0 * ecd)
        assert dense > sparse > 0

    def test_worst_case_pulse_covers_np0(self, wer_model, eval_device):
        pitch = 1.5 * eval_device.params.ecd
        pulse = wer_model.worst_case_pulse(1e-6, 0.95, pitch)
        from repro.arrays import VictimAnalysis
        from repro.arrays.pattern import ALL_P
        victim = VictimAnalysis(eval_device, pitch)
        wer = wer_model.wer(pulse, vp=0.95,
                            hz_stray=victim.hz_total(ALL_P))
        assert wer == pytest.approx(1e-6, rel=1e-6)
