"""Tests for the whole-array retention-risk map."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arrays import VictimAnalysis, retention_map
from repro.arrays.pattern import ALL_P, checkerboard, solid
from repro.device import MTJState
from repro.errors import ParameterError
from repro.units import celsius_to_kelvin


class TestRetentionMap:
    def test_border_nan_interior_finite(self, eval_device):
        rmap = retention_map(eval_device, 70e-9, solid(6, 6, 0))
        assert np.isnan(rmap.delta[0, 0])
        assert np.isfinite(rmap.delta[2, 2])

    def test_solid0_matches_victim_worst_case(self, eval_device):
        pitch = 70e-9
        rmap = retention_map(eval_device, pitch, solid(6, 6, 0))
        victim = VictimAnalysis(eval_device, pitch)
        expected = victim.delta(MTJState.P, ALL_P)
        assert rmap.delta[2, 2] == pytest.approx(expected, rel=1e-6)

    def test_solid0_weaker_than_solid1(self, eval_device):
        # All-P arrays sit at the retention worst corner; all-AP arrays
        # (storing 1s) are the stable corner under the negative field.
        weak = retention_map(eval_device, 70e-9, solid(6, 6, 0))
        strong = retention_map(eval_device, 70e-9, solid(6, 6, 1))
        assert weak.weakest_delta < strong.weakest_delta

    def test_checkerboard_has_two_levels(self, eval_device):
        rmap = retention_map(eval_device, 70e-9, checkerboard(7, 7))
        interior = rmap.delta[1:-1, 1:-1]
        unique = np.unique(np.round(interior, 6))
        assert unique.size == 2  # P cells and AP cells.

    def test_weakest_cell_coordinates(self, eval_device):
        rmap = retention_map(eval_device, 70e-9, checkerboard(7, 7))
        row, col = rmap.weakest_cell
        assert rmap.delta[row, col] == pytest.approx(
            rmap.weakest_delta)

    def test_cells_below_spec(self, eval_device):
        rmap = retention_map(eval_device, 52.5e-9, solid(6, 6, 0))
        n_all = rmap.cells_below(1000.0)
        assert n_all == 16  # every interior cell of a 6x6.
        assert rmap.cells_below(1.0) == 0

    def test_temperature_lowers_map(self, eval_device):
        cold = retention_map(eval_device, 70e-9, solid(6, 6, 0))
        hot = retention_map(eval_device, 70e-9, solid(6, 6, 0),
                            temperature=celsius_to_kelvin(125.0))
        assert hot.weakest_delta < cold.weakest_delta

    def test_statistics(self, eval_device):
        rmap = retention_map(eval_device, 70e-9, checkerboard(8, 8))
        mean, std, lo, hi = rmap.interior_statistics()
        assert lo <= mean <= hi
        assert std > 0

    def test_rejects_non_device(self):
        with pytest.raises(ParameterError):
            retention_map("device", 70e-9, solid(6, 6, 0))
