"""Engine-backend registry, kernel properties, and cross-backend parity.

The numba backend's kernels are plain Python functions wrapped by
``@njit`` only when numba imports, so this module exercises the exact
compiled logic on machines without numba: every kernel must reproduce
the vectorized numpy reference bit-for-bit, and seeded engine runs
must produce *identical* counters under either backend (the kernels
preserve draw-stream order by construction).
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ParameterError
from repro.memsys import backends as backends_mod
from repro.memsys.backends import (
    BACKENDS,
    ENGINE_BACKEND_ENV,
    get_backend,
    numba_available,
    resolve_backend,
    validate_backend,
)
from repro.memsys.backends.numba_backend import NumbaEngineBackend
from repro.memsys.backends.numpy_backend import NumpyEngineBackend
from repro.memsys.bitplane import BitPlane, popcount_rows
from repro.memsys.controller import neighborhood_class_map
from repro.memsys.engine import build_engine
from repro.memsys.sampling import (
    IncrementalClassMaps,
    N_CLASSES,
    class_index,
    sample_class_flips,
)


@pytest.fixture
def fresh_warnings(monkeypatch):
    """Reset the registry's warn-once memory for this test."""
    monkeypatch.setattr(backends_mod, "_warned", set())


@pytest.fixture
def numba_py():
    """A numba backend instance running its kernels in python mode
    (or compiled, when numba happens to be installed)."""
    return NumbaEngineBackend()


class TestRegistry:
    def test_known_backends(self):
        assert BACKENDS == ("numpy", "numba")
        for name in BACKENDS:
            assert validate_backend(name) == name

    def test_unknown_backend_rejected(self):
        with pytest.raises(ParameterError, match="unknown engine"):
            validate_backend("fortran")
        with pytest.raises(ParameterError):
            resolve_backend("fortran")

    def test_instances_are_singletons(self):
        assert get_backend("numpy") is get_backend("numpy")
        assert get_backend("numba") is get_backend("numba")

    def test_numpy_backend_is_identity(self):
        backend = NumpyEngineBackend()
        assert backend.ready()
        assert backend.unavailable_reason() is None
        assert backend.preferred_rebuild_fraction is None
        plane = BitPlane.from_bits(np.zeros(16, np.int8), 2, 8)
        assert backend.xor_popcount_rows(plane.lanes,
                                         plane.lanes) is None
        assert backend.rebuild_class_maps(np.zeros(16, np.int8),
                                          4, 4) is None
        assert backend.apply_class_changes(None, None, None,
                                           None) is None
        assert backend.group_class_members(None, None) is None
        assert backend.toggle_and_count(None, None, None, None) is None
        assert backend.inject_and_count(None, None, None) is None

    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv(ENGINE_BACKEND_ENV, raising=False)
        assert resolve_backend().name == "numpy"
        assert resolve_backend(None).name == "numpy"

    def test_instance_passes_through(self, numba_py):
        assert resolve_backend(numba_py) is numba_py

    def test_env_selects_backend(self, monkeypatch, fresh_warnings):
        monkeypatch.setenv(ENGINE_BACKEND_ENV, "numba")
        if numba_available():
            assert resolve_backend().name == "numba"
        else:
            with pytest.warns(RuntimeWarning, match=r"\[fast\]"):
                assert resolve_backend().name == "numpy"

    def test_explicit_overrides_env(self, monkeypatch, fresh_warnings):
        monkeypatch.setenv(ENGINE_BACKEND_ENV, "numba")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_backend("numpy").name == "numpy"

    def test_invalid_env_ignored_with_one_warning(
            self, monkeypatch, fresh_warnings):
        monkeypatch.setenv(ENGINE_BACKEND_ENV, "cuda")
        with pytest.warns(RuntimeWarning, match="ignoring invalid"):
            assert resolve_backend().name == "numpy"
        # Warn-once: the second resolve is silent.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_backend().name == "numpy"

    def test_numba_fallback_warns_once(self, fresh_warnings):
        if numba_available():
            pytest.skip("numba installed: no fallback on this machine")
        with pytest.warns(RuntimeWarning, match="falling back"):
            assert resolve_backend("numba").name == "numpy"
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_backend("numba").name == "numpy"

    def test_engine_resolves_env_backend(self, monkeypatch,
                                         fresh_warnings, eval_device):
        monkeypatch.setenv(ENGINE_BACKEND_ENV, "nonsense")
        with pytest.warns(RuntimeWarning, match="ignoring invalid"):
            engine = build_engine(eval_device, pitch=70e-9, rows=16,
                                  cols=16)
        assert engine.backend.name == "numpy"
        assert engine._config()["backend"] == "numpy"


class TestSelfCheck:
    def test_self_check_passes_in_python_mode(self, numba_py):
        numba_py.self_check()

    def test_ready_reports_reason_without_numba(self, numba_py):
        if numba_available():
            assert numba_py.ready()
            assert numba_py.unavailable_reason() is None
        else:
            assert not numba_py.ready()
            assert "numba" in numba_py.unavailable_reason()


def _random_plane(rng, n_words, code_bits, n_cells):
    bits = rng.integers(0, 2, size=n_cells).astype(np.int8)
    return BitPlane.from_bits(bits, n_words, code_bits), bits


class TestKernelProperties:
    @given(st.integers(0, 2**32 - 1), st.integers(0, 12),
           st.integers(1, 3))
    @settings(max_examples=40, deadline=None)
    def test_xor_popcount_matches_reference(self, seed, n, lanes):
        rng = np.random.default_rng(seed)
        backend = NumbaEngineBackend()
        a = rng.integers(0, 2**63, size=(n, lanes)).astype("<u8")
        b = a.copy()
        flip = rng.random(size=a.shape) < 0.5
        b[flip] ^= rng.integers(1, 2**63,
                                size=int(flip.sum())).astype("<u8")
        got = backend.xor_popcount_rows(a, b)
        assert got.dtype == np.int64
        assert np.array_equal(got, popcount_rows(a ^ b))

    @given(st.integers(0, 2**32 - 1), st.integers(1, 12),
           st.integers(1, 12))
    @settings(max_examples=40, deadline=None)
    def test_rebuild_matches_neighborhood_class_map(self, seed, rows,
                                                    cols):
        rng = np.random.default_rng(seed)
        backend = NumbaEngineBackend()
        bits = rng.integers(0, 2, size=rows * cols).astype(np.int8)
        nd, ng, ci, hist = backend.rebuild_class_maps(bits, rows, cols)
        nd_ref, ng_ref = neighborhood_class_map(
            bits.reshape(rows, cols))
        assert np.array_equal(nd, nd_ref.reshape(-1))
        assert np.array_equal(ng, ng_ref.reshape(-1))
        assert np.array_equal(
            ci, class_index(bits, nd_ref.reshape(-1),
                            ng_ref.reshape(-1)))
        assert np.array_equal(
            hist, np.bincount(ci, minlength=N_CLASSES))
        assert int(hist.sum()) == rows * cols

    @given(st.integers(0, 2**32 - 1), st.integers(2, 10),
           st.integers(2, 10), st.integers(1, 12))
    @settings(max_examples=40, deadline=None)
    def test_incremental_update_matches_full_rebuild(
            self, seed, rows, cols, n_toggle):
        """Toggling cells and refreshing incrementally must land on
        exactly the maps a from-scratch rebuild produces."""
        rng = np.random.default_rng(seed)
        backend = NumbaEngineBackend()
        n_cells = rows * cols
        plane, _ = _random_plane(rng, n_cells // 8, 8, n_cells)
        # Force the incremental path regardless of the churn fraction.
        maps = IncrementalClassMaps(rows, cols, plane,
                                    full_rebuild_fraction=1.1,
                                    backend=backend)
        toggle = rng.choice(n_cells, size=min(n_toggle, n_cells),
                            replace=False)
        plane.toggle_cells(toggle)
        maps.refresh(plane)
        assert maps.incremental_refreshes == 1

        fresh = IncrementalClassMaps(rows, cols, plane)
        assert np.array_equal(maps.nd, fresh.nd)
        assert np.array_equal(maps.ng, fresh.ng)
        assert np.array_equal(maps.class_idx, fresh.class_idx)
        assert np.array_equal(maps.hist, fresh.hist)

    @given(st.integers(0, 2**32 - 1), st.integers(1, 400))
    @settings(max_examples=40, deadline=None)
    def test_grouping_matches_stable_argsort(self, seed, n):
        rng = np.random.default_rng(seed)
        backend = NumbaEngineBackend()
        flat = rng.integers(0, N_CLASSES, size=n).astype(np.int8)
        hist = np.bincount(flat, minlength=N_CLASSES)
        order, bounds = backend.group_class_members(flat, hist)
        assert np.array_equal(order, np.argsort(flat, kind="stable"))
        assert np.array_equal(bounds,
                              np.concatenate([[0], np.cumsum(hist)]))

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_toggle_and_inject_match_reference_state(self, seed):
        from repro.memsys.engine import _PackedState

        rng = np.random.default_rng(seed)
        n_words, code_bits, n_cells = 6, 9, 58  # 54 mapped + 4 tail
        plane, bits = _random_plane(rng, n_words, code_bits, n_cells)

        class _Tables:
            def wer_class_probability(self):
                return np.full(N_CLASSES, 1e-3)

            def disturb_class_probability(self):
                return np.full(N_CLASSES, 1e-4)

        states = []
        for backend in (None, NumbaEngineBackend()):
            intended = BitPlane.from_bits(bits, n_words, code_bits)
            states.append(_PackedState(intended, intended.copy(),
                                       None, _Tables(),
                                       backend=backend))
        ref, fused = states

        mapped_idx = np.arange(ref.actual.n_mapped)
        for _ in range(4):
            k = int(rng.integers(0, 10))
            idx = rng.choice(n_cells, size=k, replace=False)
            ref.toggle(idx)
            fused.toggle(idx)
            # _inject's contract: the cells were just written clean,
            # so every injection creates a new wrong bit.
            clean = mapped_idx[ref.actual.get_cells(mapped_idx)
                               == ref.intended.get_cells(mapped_idx)]
            n_inj = min(int(rng.integers(0, 4)), clean.size)
            inj = rng.choice(clean, size=n_inj, replace=False)
            ref._inject(inj)
            fused._inject(inj)

        assert ref.wrong_bits == fused.wrong_bits
        assert np.array_equal(ref.err_count, fused.err_count)
        assert np.array_equal(ref.actual.lanes, fused.actual.lanes)
        assert np.array_equal(ref.actual.tail, fused.actual.tail)
        # The maintained counters agree with ground truth.
        assert np.array_equal(
            fused.err_count,
            fused.actual.diff_counts(fused.intended).astype(np.int16))

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_grouped_draws_are_bit_identical(self, seed):
        """Counting-sort grouping must not perturb the draw stream."""
        numba_py = NumbaEngineBackend()
        rng = np.random.default_rng(seed)
        class_idx = rng.integers(0, N_CLASSES,
                                 size=500).astype(np.int8)
        p_class = np.full(N_CLASSES, 0.05)
        ref = sample_class_flips(class_idx, p_class,
                                 np.random.default_rng(seed + 1))
        got = sample_class_flips(class_idx, p_class,
                                 np.random.default_rng(seed + 1),
                                 backend=numba_py)
        assert np.array_equal(ref, got)


class TestBackendTuning:
    def test_numba_raises_rebuild_threshold(self, numba_py):
        plane = BitPlane.from_bits(np.zeros(64, np.int8), 8, 8)
        default = IncrementalClassMaps(8, 8, plane)
        tuned = IncrementalClassMaps(8, 8, plane, backend=numba_py)
        assert tuned.full_rebuild_fraction > default.full_rebuild_fraction
        assert (tuned.full_rebuild_fraction
                == numba_py.preferred_rebuild_fraction)

    def test_explicit_fraction_beats_backend_preference(self,
                                                        numba_py):
        plane = BitPlane.from_bits(np.zeros(64, np.int8), 8, 8)
        maps = IncrementalClassMaps(8, 8, plane,
                                    full_rebuild_fraction=0.5,
                                    backend=numba_py)
        assert maps.full_rebuild_fraction == 0.5

    def test_numpy_backend_keeps_default_threshold(self):
        plane = BitPlane.from_bits(np.zeros(64, np.int8), 8, 8)
        maps = IncrementalClassMaps(8, 8, plane,
                                    backend=get_backend("numpy"))
        assert (maps.full_rebuild_fraction
                == IncrementalClassMaps.full_rebuild_fraction)


class TestEngineParity:
    def _engine(self, device, backend, **kwargs):
        params = dict(pitch=45e-9, rows=48, cols=48,
                      sampler="binomial", nominal_wer=5e-3,
                      workload="read-heavy", cycle_time=100e-9)
        params.update(kwargs)
        return build_engine(device, backend=backend, **params)

    _COUNTERS = ("write_errors", "disturb_flips", "retention_flips",
                 "raw_bit_errors", "uncorrectable_bit_errors",
                 "words_ok", "words_corrected", "words_detected",
                 "words_silent", "n_scrubs", "scrub_corrected_words",
                 "scrub_uncorrectable_words")

    def test_sampled_counters_identical(self, eval_device, numba_py):
        """Order-preserving kernels make the two backends not just
        statistically equivalent but draw-for-draw identical."""
        from repro.memsys.scrub import ScrubPolicy

        results = [
            self._engine(eval_device, backend,
                         scrub=ScrubPolicy(5e-4)).run(
                             20_000, rng=11, batch_size=1024)
            for backend in ("numpy", numba_py)]
        ref, fused = results
        for name in self._COUNTERS:
            assert getattr(ref, name) == getattr(fused, name), name
        assert ref.uber == fused.uber
        assert ref.config["backend"] == "numpy"
        assert fused.config["backend"] == "numba"

    def test_sampled_counters_identical_hot_retention(
            self, eval_device, numba_py):
        results = [
            build_engine(eval_device, pitch=52.5e-9, rows=24, cols=24,
                         sampler="binomial", workload="read-heavy",
                         temperature=420.0, cycle_time=10.0,
                         backend=backend).run(1500, rng=5,
                                              batch_size=256)
            for backend in ("numpy", numba_py)]
        ref, fused = results
        assert ref.retention_flips > 0
        for name in self._COUNTERS:
            assert getattr(ref, name) == getattr(fused, name), name

    def test_expected_rates_identical(self, eval_device, numba_py):
        rates = [self._engine(eval_device, backend).expected_rates(
            rng=3) for backend in ("numpy", numba_py)]
        assert rates[0] == rates[1]


class TestCliAndService:
    def test_cli_accepts_backend_flag(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["memsys", "--backend", "numba"])
        assert args.backend == "numba"
        assert build_parser().parse_args(["memsys"]).backend is None

    def test_cli_rejects_unknown_backend(self, capsys):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["memsys", "--backend", "mkl"])
        capsys.readouterr()

    def test_cli_run_reports_resolved_backend(self, capsys):
        from repro.cli import main

        assert main(["memsys", "--seed", "3", "--rows", "16",
                     "--cols", "16", "--transactions", "500",
                     "--sampler", "binomial", "--backend", "numpy",
                     "--no-sweep"]) == 0
        assert "(numpy backend)" in capsys.readouterr().out

    def test_uber_query_accepts_backend(self):
        from repro.service.protocol import parse_request

        query = parse_request({"op": "uber", "backend": "numba"})
        assert query.backend == "numba"
        assert parse_request({"op": "uber"}).backend is None
        with pytest.raises(ParameterError, match="unknown engine"):
            parse_request({"op": "uber", "backend": "mkl"})

    def test_run_uber_reports_resolved_backend(self, fresh_warnings):
        import threading

        from repro.service.protocol import parse_request
        from repro.service.runners import run_uber

        query = parse_request({
            "op": "uber", "mode": "sampled", "rows": 16, "cols": 16,
            "transactions": 500, "sampler": "binomial",
            "backend": "numba", "seed": 1})
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            payload = run_uber(query, threading.Event(),
                               lambda done, total: None)
        expected = "numba" if numba_available() else "numpy"
        assert payload["backend"] == expected
        assert payload["mode"] == "sampled"
