"""Tests for the parameter-validation guards."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import ParameterError
from repro import validation as v


class TestRequirePositive:
    def test_accepts_positive(self):
        assert v.require_positive(2.5, "x") == 2.5

    @pytest.mark.parametrize("bad", [0, -1, -1e-30])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(ParameterError, match="x"):
            v.require_positive(bad, "x")

    @pytest.mark.parametrize("bad", [math.nan, math.inf, -math.inf])
    def test_rejects_non_finite(self, bad):
        with pytest.raises(ParameterError):
            v.require_positive(bad, "x")

    def test_rejects_non_number(self):
        with pytest.raises(ParameterError):
            v.require_positive("3", "x")

    def test_rejects_bool(self):
        with pytest.raises(ParameterError):
            v.require_finite(True, "x")


class TestRanges:
    def test_inclusive_bounds(self):
        assert v.require_in_range(0.0, "x", 0.0, 1.0) == 0.0
        assert v.require_in_range(1.0, "x", 0.0, 1.0) == 1.0

    def test_exclusive_bounds(self):
        with pytest.raises(ParameterError):
            v.require_in_range(0.0, "x", 0.0, 1.0, inclusive=False)

    def test_fraction(self):
        assert v.require_fraction(0.5, "x") == 0.5
        with pytest.raises(ParameterError):
            v.require_fraction(1.5, "x")

    def test_non_negative(self):
        assert v.require_non_negative(0.0, "x") == 0.0
        with pytest.raises(ParameterError):
            v.require_non_negative(-0.1, "x")


class TestIntRange:
    def test_accepts_int(self):
        assert v.require_int_in_range(5, "n", 1, 10) == 5

    def test_rejects_float(self):
        with pytest.raises(ParameterError):
            v.require_int_in_range(5.0, "n", 1, 10)

    def test_rejects_bool(self):
        with pytest.raises(ParameterError):
            v.require_int_in_range(True, "n", 0, 10)

    def test_rejects_out_of_range(self):
        with pytest.raises(ParameterError):
            v.require_int_in_range(11, "n", 1, 10)

    def test_numpy_integer_accepted(self):
        assert v.require_int_in_range(np.int64(7), "n", 1, 10) == 7


class TestPointArray:
    def test_single_point_promoted(self):
        out = v.as_point_array((1.0, 2.0, 3.0))
        assert out.shape == (1, 3)

    def test_batch_passthrough(self):
        pts = np.zeros((5, 3))
        assert v.as_point_array(pts).shape == (5, 3)

    def test_rejects_wrong_width(self):
        with pytest.raises(ParameterError):
            v.as_point_array(np.zeros((5, 2)))

    def test_rejects_nan(self):
        pts = np.zeros((2, 3))
        pts[1, 2] = math.nan
        with pytest.raises(ParameterError):
            v.as_point_array(pts)

    def test_rejects_scalar(self):
        with pytest.raises(ParameterError):
            v.as_point_array(3.0)
