"""Tests for the point-dipole model and the far-field limit."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fields import (
    CurrentLoop,
    dipole_field,
    loop_as_dipole,
)


class TestDipoleFormula:
    def test_on_axis_value(self):
        # On the dipole axis: Hz = 2m / (4 pi r^3).
        m, r = 1e-18, 50e-9
        field = dipole_field(m, np.array([0.0, 0.0, r]))
        assert field[2] == pytest.approx(2 * m / (4 * np.pi * r ** 3))
        assert field[0] == pytest.approx(0.0, abs=1e-6)

    def test_equatorial_value(self):
        # In the equatorial plane: Hz = -m / (4 pi r^3).
        m, r = 1e-18, 50e-9
        field = dipole_field(m, np.array([r, 0.0, 0.0]))
        assert field[2] == pytest.approx(-m / (4 * np.pi * r ** 3))

    def test_inverse_cube_scaling(self):
        m = 1e-18
        h1 = dipole_field(m, np.array([50e-9, 0.0, 0.0]))[2]
        h2 = dipole_field(m, np.array([100e-9, 0.0, 0.0]))[2]
        assert h1 / h2 == pytest.approx(8.0, rel=1e-12)

    def test_position_offset(self):
        m = 1e-18
        centered = dipole_field(m, np.array([70e-9, 0.0, 0.0]))
        shifted = dipole_field(m, np.array([80e-9, 0.0, 0.0]),
                               position=(10e-9, 0.0, 0.0))
        np.testing.assert_allclose(shifted, centered, rtol=1e-12)

    def test_sign_flip_with_moment(self):
        up = dipole_field(1e-18, np.array([50e-9, 0.0, 20e-9]))
        down = dipole_field(-1e-18, np.array([50e-9, 0.0, 20e-9]))
        np.testing.assert_allclose(up, -down, rtol=1e-12)


class TestFarFieldLimit:
    def test_loop_converges_to_dipole(self):
        loop = CurrentLoop(center=(0.0, 0.0, 0.0), radius=15e-9,
                           current=2e-3)
        moment = loop_as_dipole(loop.current, loop.radius)
        assert moment == pytest.approx(loop.moment)
        for factor, tol in ((3.0, 0.06), (6.0, 0.016), (12.0, 0.004)):
            point = np.array([factor * loop.radius * 2, 0.0, 0.0])
            exact = loop.field(point)
            approx = dipole_field(moment, point)
            rel = np.linalg.norm(exact - approx) / np.linalg.norm(exact)
            assert rel < tol, f"factor {factor}: rel error {rel}"

    def test_neighbor_cell_distance_accuracy(self):
        # At the paper's pitch (90 nm for a 55 nm cell) the dipole model is
        # good to ~10 % — the fast-estimate regime used in analyses.
        loop = CurrentLoop(center=(0.0, 0.0, 0.0), radius=27.5e-9,
                           current=2.2e-3)
        point = np.array([90e-9, 0.0, 0.0])
        exact = loop.field(point)[2]
        approx = dipole_field(loop.moment, point)[2]
        assert abs(approx / exact - 1.0) < 0.12
