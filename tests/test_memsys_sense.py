"""Tests for the sense-margin read model.

Unit tests pin the operating-point solver and the misread tail; the
hypothesis properties assert the module's two monotonicity claims —
both margins *shrink* as the read voltage grows (TMR roll-off) and
*grow* with the zero-bias TMR — across the physical parameter range.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.device.access import AccessTransistor
from repro.device.resistance import ResistanceModel
from repro.errors import ParameterError
from repro.arrays.layout import ArrayLayout
from repro.memsys import SenseMarginModel, build_engine
from repro.memsys.controller import ArrayController
from repro.memsys.ecc import make_ecc
from repro.memsys.sense import read_bias_voltage


@pytest.fixture(scope="module")
def device():
    from repro.device import MTJDevice, PAPER_EVAL_DEVICE
    return MTJDevice(PAPER_EVAL_DEVICE)


RESISTANCE = ResistanceModel(ra=6.4e-12, tmr0=1.5, v_half=0.55)
ECD = 35e-9
ACCESS = AccessTransistor(r_on=2e3)


class TestReadBiasVoltage:
    def test_divider_brackets_the_bias(self):
        v = read_bias_voltage(RESISTANCE, ECD, 0.15, ACCESS.r_on)
        assert 0.0 < v < 0.15
        # Self-consistency of the fixed point.
        r = RESISTANCE.rap(ECD, v)
        assert v == pytest.approx(0.15 * r / (r + ACCESS.r_on),
                                  abs=1e-10)

    def test_monotone_in_read_voltage(self):
        biases = [read_bias_voltage(RESISTANCE, ECD, v, ACCESS.r_on)
                  for v in (0.05, 0.15, 0.3, 0.5)]
        assert biases == sorted(biases)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ParameterError):
            read_bias_voltage(RESISTANCE, ECD, 0.0, ACCESS.r_on)
        with pytest.raises(ParameterError):
            read_bias_voltage(RESISTANCE, ECD, 0.15, -1.0)


class TestSenseMarginModel:
    def test_validation(self):
        with pytest.raises(ParameterError):
            SenseMarginModel(access=object())
        with pytest.raises(ParameterError):
            SenseMarginModel(access=ACCESS, sigma_r=0.0)
        with pytest.raises(ParameterError):
            SenseMarginModel(access=ACCESS, sigma_r=1.0)

    def test_branch_order(self):
        sense = SenseMarginModel(access=ACCESS)
        r_p, r_ap = sense.branch_resistances(RESISTANCE, ECD, 0.15)
        assert r_ap > r_p > ACCESS.r_on
        with pytest.raises(ParameterError):
            sense.branch_resistances(object(), ECD, 0.15)

    def test_margins_positive(self):
        sense = SenseMarginModel(access=ACCESS)
        m_p, m_ap = sense.margins(RESISTANCE, ECD, 0.15)
        assert m_p > 0 and m_ap > 0

    def test_failure_probability_shape_and_range(self, device):
        sense = SenseMarginModel(access=ACCESS, sigma_r=0.08)
        p = sense.read_failure_probability(device, 0.15)
        assert p.shape == (2,)
        assert np.all((p > 0) & (p < 0.5))
        # The AP branch loses margin to the TMR roll-off first.
        assert p[1] > p[0]
        with pytest.raises(ParameterError):
            sense.read_failure_probability(object(), 0.15)

    def test_failure_grows_with_read_voltage(self, device):
        sense = SenseMarginModel(access=ACCESS, sigma_r=0.08)
        low = sense.read_failure_probability(device, 0.1)
        high = sense.read_failure_probability(device, 0.4)
        assert np.all(high >= low)
        assert high[1] > low[1]

    def test_wider_spread_fails_more(self, device):
        tight = SenseMarginModel(access=ACCESS, sigma_r=0.03)
        loose = SenseMarginModel(access=ACCESS, sigma_r=0.12)
        assert np.all(
            loose.read_failure_probability(device, 0.15)
            >= tight.read_failure_probability(device, 0.15))

    def test_describe(self):
        sense = SenseMarginModel(access=ACCESS, sigma_r=0.05)
        assert sense.describe() == {"r_on": 2e3, "sigma_r": 0.05}


_voltages = st.floats(min_value=0.05, max_value=0.5)
_tmrs = st.floats(min_value=0.3, max_value=3.0)


class TestMonotonicityProperties:
    @settings(max_examples=50, deadline=None)
    @given(v_lo=_voltages, v_hi=_voltages)
    def test_margins_shrink_with_read_voltage(self, v_lo, v_hi):
        if v_lo > v_hi:
            v_lo, v_hi = v_hi, v_lo
        sense = SenseMarginModel(access=ACCESS)
        lo = sense.margins(RESISTANCE, ECD, v_lo)
        hi = sense.margins(RESISTANCE, ECD, v_hi)
        assert hi[0] <= lo[0] + 1e-12
        assert hi[1] <= lo[1] + 1e-12

    @settings(max_examples=50, deadline=None)
    @given(tmr_lo=_tmrs, tmr_hi=_tmrs, v=_voltages)
    def test_margins_grow_with_tmr(self, tmr_lo, tmr_hi, v):
        if tmr_lo > tmr_hi:
            tmr_lo, tmr_hi = tmr_hi, tmr_lo
        sense = SenseMarginModel(access=ACCESS)
        lo = sense.margins(
            ResistanceModel(ra=6.4e-12, tmr0=tmr_lo, v_half=0.55),
            ECD, v)
        hi = sense.margins(
            ResistanceModel(ra=6.4e-12, tmr0=tmr_hi, v_half=0.55),
            ECD, v)
        assert hi[0] >= lo[0] - 1e-12
        assert hi[1] >= lo[1] - 1e-12

    @settings(max_examples=30, deadline=None)
    @given(v=_voltages, tmr=_tmrs)
    def test_margins_stay_positive(self, v, tmr):
        sense = SenseMarginModel(access=ACCESS)
        m_p, m_ap = sense.margins(
            ResistanceModel(ra=6.4e-12, tmr0=tmr, v_half=0.55),
            ECD, v)
        assert m_p > 0 and m_ap > 0


class TestControllerFold:
    def test_disturb_tables_absorb_misreads(self, device):
        layout = ArrayLayout(pitch=70e-9, rows=16, cols=16)
        baseline = ArrayController(device, layout, make_ecc("secded"))
        sense = SenseMarginModel(access=ACCESS, sigma_r=0.08)
        gated = ArrayController(device, layout, make_ecc("secded"),
                                sense=sense)
        assert np.all(gated.disturb_table >= baseline.disturb_table)
        assert gated.disturb_table[1].min() \
            > baseline.disturb_table[1].max()
        assert gated.describe()["sense"] == sense.describe()
        assert "sense" not in baseline.describe()

    def test_engine_rates_rise_under_sense_gating(self, device):
        plain = build_engine(device, pitch=70e-9, rows=16, cols=16)
        gated = build_engine(
            device, pitch=70e-9, rows=16, cols=16,
            sense=SenseMarginModel(access=ACCESS, sigma_r=0.1))
        assert gated.expected_rates(rng=0)["raw_ber"] > \
            plain.expected_rates(rng=0)["raw_ber"]

    def test_sense_travels_through_topology_engine(self, device):
        sense = SenseMarginModel(access=ACCESS, sigma_r=0.1)
        flat = build_engine(device, pitch=70e-9, rows=16, cols=16,
                            sense=sense)
        banked = build_engine(device, pitch=70e-9, rows=16, cols=16,
                              topology="banked", banks=1, subarrays=1,
                              sense=sense)
        assert flat.run(2000, rng=3).raw_bit_errors == \
            banked.run(2000, rng=3).raw_bit_errors
        assert banked.template.controller.describe()["sense"] == \
            sense.describe()
