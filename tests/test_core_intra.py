"""Tests for the intra-cell coupling model (Fig. 2b / 3d anchors)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import IntraCellModel
from repro.errors import ParameterError
from repro.units import am_to_oe, nm_to_m


@pytest.fixture(scope="module")
def model():
    return IntraCellModel()


class TestCenterField:
    def test_eval_anchor(self, model):
        assert model.hz_at_center_oe(nm_to_m(35.0)) == pytest.approx(
            -325.0, abs=25.0)

    def test_negative_for_all_sizes(self, model):
        for ecd_nm in (20.0, 35.0, 55.0, 90.0, 175.0):
            assert model.hz_at_center(nm_to_m(ecd_nm)) < 0

    def test_magnitude_grows_as_size_shrinks(self, model):
        values = model.hz_vs_ecd(
            np.array([nm_to_m(e) for e in (35.0, 55.0, 90.0, 175.0)]))
        magnitudes = np.abs(am_to_oe(values))
        assert np.all(np.diff(magnitudes) < 0)

    def test_steeper_below_100nm(self, model):
        # Slope (per nm) between 35-55 exceeds slope between 120-175.
        h35 = model.hz_at_center_oe(nm_to_m(35.0))
        h55 = model.hz_at_center_oe(nm_to_m(55.0))
        h120 = model.hz_at_center_oe(nm_to_m(120.0))
        h175 = model.hz_at_center_oe(nm_to_m(175.0))
        slope_small = abs(h35 - h55) / 20.0
        slope_large = abs(h120 - h175) / 55.0
        assert slope_small > 2 * slope_large

    def test_vs_ecd_validation(self, model):
        with pytest.raises(ParameterError):
            model.hz_vs_ecd(np.array([]))


class TestRadialProfile:
    def test_center_magnitude_largest(self, model):
        positions, hz = model.radial_profile(nm_to_m(55.0), n_points=41)
        hz_oe = am_to_oe(hz)
        center = hz_oe[20]
        assert center < 0
        assert abs(hz_oe[0]) < abs(center)
        assert abs(hz_oe[-1]) < abs(center)

    def test_profile_symmetric(self, model):
        positions, hz = model.radial_profile(nm_to_m(55.0), n_points=21)
        np.testing.assert_allclose(hz, hz[::-1], rtol=1e-9)

    def test_positions_span_margin(self, model):
        positions, _ = model.radial_profile(nm_to_m(55.0), n_points=11,
                                            margin=0.9)
        assert positions[0] == pytest.approx(-0.9 * 27.5e-9)


class TestLayerContributions:
    def test_rl_positive_hl_negative(self, model):
        hz_rl, hz_hl = model.layer_contributions(nm_to_m(55.0))
        assert hz_rl > 0  # RL points +z, field at FL follows it.
        assert hz_hl < 0  # HL points -z.

    def test_sum_equals_total(self, model):
        hz_rl, hz_hl = model.layer_contributions(nm_to_m(55.0))
        assert hz_rl + hz_hl == pytest.approx(
            model.hz_at_center(nm_to_m(55.0)), rel=1e-9)

    def test_hl_dominates(self, model):
        hz_rl, hz_hl = model.layer_contributions(nm_to_m(55.0))
        assert abs(hz_hl) > abs(hz_rl)


class TestFieldMap:
    def test_shape(self, model):
        pts = np.zeros((7, 3))
        pts[:, 0] = np.linspace(0, 50e-9, 7)
        out = model.field_map(nm_to_m(55.0), pts)
        assert out.shape == (7, 3)

    def test_y_component_zero_on_x_axis(self, model):
        pts = np.array([[20e-9, 0.0, 0.0]])
        out = model.field_map(nm_to_m(55.0), pts)
        assert abs(out[0, 1]) < 1e-9
