"""Tests for the material models."""

from __future__ import annotations

import pytest

from repro.errors import ParameterError
from repro.materials import (
    COFEB_FREE,
    COPT_HARD_EFF,
    MGO,
    Material,
    get_material,
    registered_materials,
)


class TestMaterialBasics:
    def test_magnetic_flag(self):
        assert COFEB_FREE.is_magnetic
        assert not MGO.is_magnetic

    def test_with_ms_returns_copy(self):
        modified = COFEB_FREE.with_ms(5e5)
        assert modified.ms == 5e5
        assert COFEB_FREE.ms != 5e5
        assert modified.name == COFEB_FREE.name

    def test_negative_ms_rejected(self):
        with pytest.raises(ParameterError):
            Material(name="bad", ms=-1.0)

    def test_reference_above_curie_rejected(self):
        with pytest.raises(ParameterError):
            Material(name="bad", ms=1e6, curie_temperature=300.0,
                     reference_temperature=400.0)


class TestBlochLaw:
    def test_unity_at_reference(self):
        assert COFEB_FREE.bloch_factor(
            COFEB_FREE.reference_temperature) == pytest.approx(1.0)

    def test_decreases_with_temperature(self):
        t_ref = COFEB_FREE.reference_temperature
        assert COFEB_FREE.bloch_factor(t_ref + 100.0) < 1.0
        assert COFEB_FREE.bloch_factor(t_ref - 100.0) > 1.0

    def test_zero_at_curie(self):
        tc = COFEB_FREE.curie_temperature
        assert COFEB_FREE.bloch_factor(tc) == 0.0
        assert COFEB_FREE.bloch_factor(tc + 50.0) == 0.0

    def test_nonmagnetic_is_zero(self):
        assert MGO.bloch_factor(300.0) == 0.0
        assert MGO.ms_at(300.0) == 0.0

    def test_ms_at_consistency(self):
        t = 400.0
        assert COFEB_FREE.ms_at(t) == pytest.approx(
            COFEB_FREE.ms * COFEB_FREE.bloch_factor(t))

    def test_monotone_decrease(self):
        temps = [200.0, 300.0, 400.0, 500.0, 600.0]
        values = [COPT_HARD_EFF.bloch_factor(t) for t in temps]
        assert all(a > b for a, b in zip(values, values[1:]))


class TestRegistry:
    def test_lookup_known(self):
        assert get_material("MgO") is MGO

    def test_lookup_unknown_lists_names(self):
        with pytest.raises(ParameterError, match="MgO"):
            get_material("unobtainium")

    def test_registry_sorted(self):
        names = registered_materials()
        assert names == sorted(names)
        assert "CoFeB-FL" in names
