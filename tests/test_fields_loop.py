"""Tests for the loop field solvers: analytic vs discrete vs closed forms."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ParameterError
from repro.fields import (
    loop_field_analytic,
    loop_field_biot_savart,
    loop_field_on_axis,
    segment_loop,
)

RADII = st.floats(min_value=5e-9, max_value=100e-9)
CURRENTS = st.floats(min_value=-5e-3, max_value=5e-3,
                     allow_nan=False).filter(lambda i: abs(i) > 1e-6)


class TestOnAxis:
    def test_center_value(self):
        # Hz(0) = I / (2 R).
        current, radius = 2e-3, 20e-9
        assert loop_field_on_axis(current, radius, 0.0) == pytest.approx(
            current / (2 * radius))

    def test_symmetry_in_z(self):
        h_up = loop_field_on_axis(1e-3, 20e-9, 5e-9)
        h_down = loop_field_on_axis(1e-3, 20e-9, -5e-9)
        assert h_up == pytest.approx(h_down)

    def test_sign_follows_current(self):
        assert loop_field_on_axis(1e-3, 20e-9, 0.0) > 0
        assert loop_field_on_axis(-1e-3, 20e-9, 0.0) < 0

    def test_analytic_matches_on_axis_formula(self):
        current, radius = 1.3e-3, 30e-9
        zs = np.array([-20e-9, 0.0, 7e-9, 50e-9])
        pts = np.stack([np.zeros_like(zs), np.zeros_like(zs), zs], axis=1)
        field = loop_field_analytic(current, radius, pts)
        np.testing.assert_allclose(
            field[:, 2], loop_field_on_axis(current, radius, zs),
            rtol=1e-10)
        np.testing.assert_allclose(field[:, :2], 0.0, atol=1e-6)


class TestAnalyticVsBiotSavart:
    @settings(max_examples=25, deadline=None)
    @given(radius=RADII, current=CURRENTS,
           rho_frac=st.floats(min_value=0.0, max_value=2.5),
           z_frac=st.floats(min_value=-2.0, max_value=2.0),
           phi=st.floats(min_value=0.0, max_value=6.28))
    def test_agreement_off_wire(self, radius, current, rho_frac, z_frac,
                                phi):
        # Stay away from the wire singularity at (rho=R, z=0).
        if abs(rho_frac - 1.0) < 0.2 and abs(z_frac) < 0.2:
            z_frac += 0.5
        point = np.array([
            rho_frac * radius * np.cos(phi),
            rho_frac * radius * np.sin(phi),
            z_frac * radius,
        ])
        exact = loop_field_analytic(current, radius, point)
        discrete = loop_field_biot_savart(current, radius, point,
                                          n_segments=3000)
        scale = np.linalg.norm(exact) + abs(current) / radius * 1e-6
        np.testing.assert_allclose(discrete, exact, atol=2e-4 * scale,
                                   rtol=2e-4)

    def test_convergence_order(self):
        # Error decreases as the segment count grows.
        point = np.array([10e-9, 5e-9, 8e-9])
        exact = loop_field_analytic(1e-3, 25e-9, point)
        errors = []
        for n in (60, 240, 960):
            approx = loop_field_biot_savart(1e-3, 25e-9, point,
                                            n_segments=n)
            errors.append(np.linalg.norm(approx - exact))
        assert errors[0] > errors[1] > errors[2]
        # Roughly second-order: x4 segments -> ~x16 error drop.
        assert errors[0] / errors[1] > 8.0


class TestAnalyticStructure:
    def test_field_inside_loop_parallel_to_moment(self):
        # Just above the loop plane, inside the radius: Hz has the sign of
        # the current (field parallel to the magnetization it represents).
        field = loop_field_analytic(
            2e-3, 20e-9, np.array([5e-9, 0.0, 2e-9]))
        assert field[2] > 0

    def test_field_outside_loop_reversed(self):
        # In the loop plane, outside the radius: Hz flips sign (return
        # flux).
        field = loop_field_analytic(
            2e-3, 20e-9, np.array([60e-9, 0.0, 0.0]))
        assert field[2] < 0

    def test_radial_component_antisymmetric_in_z(self):
        up = loop_field_analytic(1e-3, 20e-9,
                                 np.array([10e-9, 0.0, 4e-9]))
        down = loop_field_analytic(1e-3, 20e-9,
                                   np.array([10e-9, 0.0, -4e-9]))
        assert up[0] == pytest.approx(-down[0], rel=1e-9)
        assert up[2] == pytest.approx(down[2], rel=1e-9)

    def test_rotational_symmetry(self):
        r, z = 12e-9, 6e-9
        a = loop_field_analytic(1e-3, 20e-9, np.array([r, 0.0, z]))
        b = loop_field_analytic(1e-3, 20e-9, np.array([0.0, r, z]))
        assert a[2] == pytest.approx(b[2], rel=1e-12)
        assert a[0] == pytest.approx(b[1], rel=1e-12)

    def test_zero_current_zero_field(self):
        field = loop_field_analytic(0.0, 20e-9,
                                    np.array([10e-9, 0.0, 4e-9]))
        np.testing.assert_allclose(field, 0.0)

    def test_single_point_shape(self):
        out = loop_field_analytic(1e-3, 20e-9, (0.0, 0.0, 1e-9))
        assert out.shape == (3,)

    def test_bad_points_shape_rejected(self):
        with pytest.raises(ParameterError):
            loop_field_analytic(1e-3, 20e-9, np.zeros((3, 2)))


class TestSegmentLoop:
    def test_closed_polygon(self):
        midpoints, dl = segment_loop(20e-9, 100)
        np.testing.assert_allclose(np.sum(dl, axis=0), 0.0, atol=1e-22)

    def test_perimeter(self):
        _, dl = segment_loop(20e-9, 2000)
        perimeter = np.sum(np.linalg.norm(dl, axis=1))
        assert perimeter == pytest.approx(2 * np.pi * 20e-9, rel=1e-5)

    def test_center_offset(self):
        midpoints, _ = segment_loop(20e-9, 64, center=(5e-9, -3e-9, 7e-9))
        np.testing.assert_allclose(
            np.mean(midpoints, axis=0), [5e-9, -3e-9, 7e-9], atol=1e-15)

    def test_minimum_segments(self):
        with pytest.raises(ParameterError):
            segment_loop(20e-9, 2)
