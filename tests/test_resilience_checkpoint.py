"""Checkpoint/resume: the crash-tolerance acceptance criteria.

The load-bearing claim: a run killed mid-campaign and resumed from its
checkpoint produces counters, draws, and UBER *byte-identical* to the
uninterrupted seeded run — for both samplers and for flat and banked
topologies. Everything else here (corrupt/stale/EIO fallbacks) defends
the other half of the contract: a checkpoint that cannot be trusted
degrades to a clean restart with a counted warning, never to wrong
numbers.
"""

import dataclasses
import os

import numpy as np
import pytest

from repro.errors import (ParameterError, ResilienceWarning,
                          RunAborted, RunIdentityError)
from repro.memsys import build_engine
from repro.resilience import (
    CheckpointManager,
    FaultyFileSystem,
    RunCheckpointer,
    checkpoint_key,
    corrupt_checkpoint,
)
from repro.units import nm_to_m

#: Small but multi-batch run shape: 6 batches of 1024 transactions.
N_TRANSACTIONS = 6 * 1024
BATCH = 1024


def _engine(device, sampler="bernoulli", rows=16, cols=16, **kwargs):
    return build_engine(device, pitch=nm_to_m(70.0), rows=rows,
                        cols=cols, ecc="secded", workload="random",
                        sampler=sampler, **kwargs)


class _KillAfter:
    """Progress callback that aborts the run after ``n`` batches —
    the in-process stand-in for a SIGKILL at a batch boundary."""

    def __init__(self, n):
        self.n = n
        self.calls = 0

    def __call__(self, done, total):
        self.calls += 1
        if self.calls >= self.n:
            raise RunAborted("injected crash")


class TestByteIdenticalResume:
    @pytest.mark.parametrize("sampler", ["bernoulli", "binomial"])
    def test_killed_run_resumes_byte_identical(self, eval_device,
                                               tmp_path, sampler):
        base = _engine(eval_device, sampler=sampler).run(
            N_TRANSACTIONS, rng=np.random.default_rng(7),
            batch_size=BATCH)

        manager = CheckpointManager(str(tmp_path))
        with pytest.raises(RunAborted):
            _engine(eval_device, sampler=sampler).run(
                N_TRANSACTIONS, rng=np.random.default_rng(7),
                batch_size=BATCH, checkpoint=manager,
                progress=_KillAfter(3))
        assert manager.saves >= 1

        resumed = _engine(eval_device, sampler=sampler).run(
            N_TRANSACTIONS, rng=np.random.default_rng(7),
            batch_size=BATCH, checkpoint=manager, resume=True)
        assert dataclasses.asdict(resumed) == dataclasses.asdict(base)

    def test_resume_of_completed_run_returns_stored_result(
            self, eval_device, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        first = _engine(eval_device).run(
            N_TRANSACTIONS, rng=np.random.default_rng(7),
            batch_size=BATCH, checkpoint=manager)
        saves_after_first = manager.saves
        again = _engine(eval_device).run(
            N_TRANSACTIONS, rng=np.random.default_rng(7),
            batch_size=BATCH, checkpoint=manager, resume=True)
        assert dataclasses.asdict(again) == dataclasses.asdict(first)
        # The finalized checkpoint answered outright: no new batches
        # ran, so no new snapshots were written.
        assert manager.saves == saves_after_first

    def test_banked_topology_resumes_byte_identical(self, eval_device,
                                                    tmp_path):
        # 32x32 tiled 2x2: each 16x16 shard still fits a codeword.
        kwargs = dict(topology="banked", banks=2, subarrays=2,
                      rows=32, cols=32)
        base = _engine(eval_device, **kwargs).run(
            N_TRANSACTIONS, rng=np.random.default_rng(7),
            batch_size=BATCH)

        manager = CheckpointManager(str(tmp_path))
        with pytest.raises(RunAborted):
            _engine(eval_device, **kwargs).run(
                N_TRANSACTIONS, rng=np.random.default_rng(7),
                batch_size=BATCH, checkpoint=manager,
                progress=_KillAfter(3))
        # Per-shard tags: the kill landed inside one of the 4 shards.
        assert any(tag.startswith("shard-")
                   for tag in manager.tags())

        resumed = _engine(eval_device, **kwargs).run(
            N_TRANSACTIONS, rng=np.random.default_rng(7),
            batch_size=BATCH, checkpoint=manager, resume=True)
        assert dataclasses.asdict(resumed) == dataclasses.asdict(base)


class TestFallbacks:
    def test_corrupt_checkpoint_restarts_clean(self, eval_device,
                                               tmp_path):
        base = _engine(eval_device).run(
            N_TRANSACTIONS, rng=np.random.default_rng(7),
            batch_size=BATCH)
        manager = CheckpointManager(str(tmp_path))
        with pytest.raises(RunAborted):
            _engine(eval_device).run(
                N_TRANSACTIONS, rng=np.random.default_rng(7),
                batch_size=BATCH, checkpoint=manager,
                progress=_KillAfter(3))
        corrupt_checkpoint(os.path.join(str(tmp_path), "run.ckpt"))

        with pytest.warns(ResilienceWarning, match="corrupt"):
            resumed = _engine(eval_device).run(
                N_TRANSACTIONS, rng=np.random.default_rng(7),
                batch_size=BATCH, checkpoint=manager, resume=True)
        assert manager.corrupt_fallbacks == 1
        # Clean restart, not wrong numbers: the full seeded run again.
        assert dataclasses.asdict(resumed) == dataclasses.asdict(base)

    def test_stale_checkpoint_is_not_inherited(self, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        manager.save("run", {"key": checkpoint_key(("config-a", 1)),
                             "done": 10})
        with pytest.warns(ResilienceWarning, match="different run"):
            payload = manager.load(
                "run", expect_key=checkpoint_key(("config-b", 1)))
        assert payload is None
        assert manager.stale_fallbacks == 1

    def test_save_failure_warns_and_continues(self, tmp_path):
        fs = FaultyFileSystem(fail_replace_at={1})
        manager = CheckpointManager(str(tmp_path), fs=fs)
        with pytest.warns(ResilienceWarning, match="save failed"):
            assert manager.save("run", {"key": "k"}) is False
        assert manager.save("run", {"key": "k"}) is True
        assert manager.save_failures == 1
        assert manager.saves == 1
        assert fs.injected == 1

    def test_unreadable_and_truncated_blobs_are_corrupt(self,
                                                        tmp_path):
        manager = CheckpointManager(str(tmp_path))
        manager.save("run", {"key": "k", "state": list(range(100))})
        path = os.path.join(str(tmp_path), "run.ckpt")
        with open(path, "rb") as handle:
            blob = handle.read()
        with open(path, "wb") as handle:
            handle.write(blob[:len(blob) // 2])
        with pytest.warns(ResilienceWarning, match="corrupt"):
            assert manager.load("run") is None
        assert manager.corrupt_fallbacks == 1


class TestRunIdentity:
    """--resume against a checkpoint from a *different* run must be a
    clear refusal naming the differing fields, not a silent clean
    restart the operator mistakes for a resume."""

    def _checkpointed(self, eval_device, tmp_path, seed=7):
        manager = CheckpointManager(str(tmp_path))
        _engine(eval_device).run(
            N_TRANSACTIONS, rng=np.random.default_rng(seed),
            batch_size=BATCH, checkpoint=manager)
        return manager

    def test_resume_with_different_seed_refuses(self, eval_device,
                                                tmp_path):
        manager = self._checkpointed(eval_device, tmp_path, seed=7)
        with pytest.raises(RunIdentityError) as err:
            _engine(eval_device).run(
                N_TRANSACTIONS, rng=np.random.default_rng(8),
                batch_size=BATCH, checkpoint=manager, resume=True)
        assert "seed_state" in str(err.value)
        assert "refusing to resume" in str(err.value)

    def test_resume_with_different_config_names_the_fields(
            self, eval_device, tmp_path):
        manager = self._checkpointed(eval_device, tmp_path)
        with pytest.raises(RunIdentityError) as err:
            _engine(eval_device, sampler="binomial").run(
                N_TRANSACTIONS, rng=np.random.default_rng(7),
                batch_size=BATCH, checkpoint=manager, resume=True)
        message = str(err.value)
        assert "different run" in message
        assert "sampler" in message

    def test_explicit_resume_raises_even_on_legacy_checkpoint(
            self, tmp_path):
        """A pre-manifest checkpoint carries no identity to diff, but
        an explicit identity-bearing resume against the wrong key is
        still a refusal, not a silent fresh start."""
        manager = CheckpointManager(str(tmp_path))
        manager.save("run", {"key": checkpoint_key(("config-a", 1)),
                             "done": 10})
        with pytest.raises(RunIdentityError,
                           match="predates identity records"):
            manager.load("run",
                         expect_key=checkpoint_key(("config-b", 1)),
                         identity={"rows": 16})

    def test_identity_less_callers_keep_the_warn_path(self, tmp_path):
        """Without an identity (pre-PR callers), a key mismatch stays
        a counted warning — no behavior change for old code."""
        manager = CheckpointManager(str(tmp_path))
        manager.save("run", {"key": checkpoint_key(("config-a", 1)),
                             "done": 10})
        with pytest.warns(ResilienceWarning, match="different run"):
            payload = manager.load(
                "run", expect_key=checkpoint_key(("config-b", 1)))
        assert payload is None
        assert manager.stale_fallbacks == 1

    def test_sidecar_disagreement_is_a_corrupt_fallback(
            self, eval_device, tmp_path):
        """A well-framed blob swapped in behind the manifest sidecar's
        back is treated as corrupt (counted, clean restart), never
        resumed."""
        base = _engine(eval_device).run(
            N_TRANSACTIONS, rng=np.random.default_rng(7),
            batch_size=BATCH)
        manager = self._checkpointed(eval_device, tmp_path)
        other_dir = str(tmp_path / "other")
        self._checkpointed(eval_device, other_dir, seed=9)
        with open(os.path.join(other_dir, "run.ckpt"), "rb") as fh:
            blob = fh.read()
        with open(os.path.join(str(tmp_path), "run.ckpt"),
                  "wb") as fh:
            fh.write(blob)
        with pytest.warns(ResilienceWarning, match="sidecar"):
            resumed = _engine(eval_device).run(
                N_TRANSACTIONS, rng=np.random.default_rng(7),
                batch_size=BATCH, checkpoint=manager, resume=True)
        assert manager.corrupt_fallbacks == 1
        assert dataclasses.asdict(resumed) == dataclasses.asdict(base)

    def test_sidecar_written_next_to_checkpoint(self, eval_device,
                                                tmp_path):
        self._checkpointed(eval_device, tmp_path)
        sidecar = os.path.join(str(tmp_path), "run.manifest.json")
        assert os.path.exists(sidecar)
        from repro.integrity import load_sealed
        record = load_sealed(sidecar)
        assert record["kind"] == "checkpoint"
        assert record["complete"] is True
        assert record["snapshots"]


class TestCheckpointPlumbing:
    def test_checkpoint_key_is_stable_and_discriminating(self):
        assert checkpoint_key(("a", 1)) == checkpoint_key(("a", 1))
        assert checkpoint_key(("a", 1)) != checkpoint_key(("a", 2))
        assert len(checkpoint_key(("a", 1))) == 32

    def test_save_load_round_trip(self, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        payload = {"key": "k", "state": np.arange(8), "done": 3}
        assert manager.save("run", payload)
        loaded = manager.load("run", expect_key="k")
        assert loaded["done"] == 3
        np.testing.assert_array_equal(loaded["state"], np.arange(8))

    def test_tags_and_delete(self, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        manager.save("shard-0", {"key": "k"})
        manager.save("shard-1", {"key": "k"})
        assert manager.tags() == ["shard-0", "shard-1"]
        manager.delete("shard-0")
        assert manager.tags() == ["shard-1"]
        manager.delete("shard-0")  # idempotent

    def test_rejects_path_traversal_tags(self, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        for tag in ("", "../escape", "a/b", ".hidden"):
            with pytest.raises(ParameterError):
                manager.save(tag, {"key": "k"})

    def test_cadence_gates_snapshot_frequency(self, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        checkpointer = RunCheckpointer(manager, every=100)
        assert checkpointer.maybe_save(0, lambda: {"key": "k"})
        assert not checkpointer.maybe_save(50, lambda: {"key": "k"})
        assert checkpointer.maybe_save(150, lambda: {"key": "k"})
        assert manager.saves == 2

    def test_missing_checkpoint_is_a_silent_miss(self, tmp_path):
        # Absence is the normal first-run case: no warning, no counter.
        manager = CheckpointManager(str(tmp_path))
        assert manager.load("run") is None
        assert manager.corrupt_fallbacks == 0
        assert manager.stale_fallbacks == 0
