"""Tests for the distributed sweep executor (spool-directory transport).

Covers the broker/worker protocol end to end — determinism against the
serial baseline, external-worker service, the work-stealing schedule —
and the fault-injection acceptance cases: a worker crashing mid-chunk,
a stale heartbeat losing its claim, and duplicate result commits.
"""

from __future__ import annotations

import json
import os
import pickle
import threading
import time

import pytest

from repro.errors import ParameterError, ResilienceWarning
from repro.sweep import (
    SHUTDOWN_SENTINEL,
    SWEEP_SPAWN_ENV,
    SWEEP_SPOOL_ENV,
    DistributedBroker,
    SpoolWorker,
    SweepSpec,
    run_sweep,
    schedule_chunks,
)
from repro.sweep.distributed import (
    QUARANTINE_DIR,
    SWEEP_HEARTBEAT_ENV,
    SWEEP_MAX_ATTEMPTS_ENV,
    SpoolRun,
    worker_main,
)
from repro.validation import require_positive


def product_point(a, b):
    """Module-level picklable point function."""
    require_positive(a, "a")
    require_positive(b, "b")
    return a * b


def crash_once_point(a, marker):
    """Crashes the hosting process on the first-ever call (by marker).

    The exclusive create makes exactly one caller die mid-chunk —
    before any result commit — so the broker must detect the stale
    claim and retry the chunk elsewhere.
    """
    try:
        with open(marker, "x"):
            pass
    except FileExistsError:
        return a * 10
    os._exit(1)


def slow_point(a, delay):
    time.sleep(delay)
    return a + 1


def fail_once_point(a, marker):
    """Ships one error payload (by marker), then succeeds on retry."""
    try:
        with open(marker, "x"):
            pass
    except FileExistsError:
        return a * 10
    raise RuntimeError("injected transient failure")


def poison_point(a, poison_at):
    """Fails every attempt at one point — a genuinely poison chunk."""
    if a == poison_at:
        raise RuntimeError("this point is poison")
    return a * 10


class TestScheduleChunks:
    def test_covers_every_point_in_order(self):
        bounds = schedule_chunks(101, 4)
        assert bounds[0][0] == 0
        assert bounds[-1][1] == 101
        for (_, stop), (start, _) in zip(bounds, bounds[1:]):
            assert stop == start

    def test_guided_sizes_decrease_to_small_tail(self):
        bounds = schedule_chunks(100, 4)
        sizes = [stop - start for start, stop in bounds]
        assert sizes[0] == 100 // 8
        assert sorted(sizes, reverse=True) == sizes
        assert sizes[-1] == 1

    def test_explicit_chunk_size_is_uniform(self):
        bounds = schedule_chunks(10, 4, chunk_size=4)
        assert bounds == [(0, 4), (4, 8), (8, 10)]

    def test_min_chunk_floor(self):
        sizes = [stop - start
                 for start, stop in schedule_chunks(40, 4, min_chunk=5)]
        assert min(sizes) >= 5 or sum(sizes) == 40
        assert sum(sizes) == 40

    def test_empty_sweep(self):
        assert schedule_chunks(0, 4) == []

    def test_rejects_bad_arguments(self):
        with pytest.raises(ParameterError):
            schedule_chunks(-1, 4)
        with pytest.raises(ParameterError):
            schedule_chunks(10, 0)
        with pytest.raises(ParameterError):
            schedule_chunks(10, 4, chunk_size=0)


class TestDistributedExecutor:
    def test_matches_serial(self):
        spec = SweepSpec.product(a=tuple(range(1, 11)), b=(2, 3))
        serial = run_sweep(product_point, spec)
        distributed = run_sweep(product_point, spec,
                                executor="distributed", jobs=2)
        assert distributed.values == serial.values
        assert distributed.executor == "distributed"
        stats = distributed.extras["distributed"]
        assert stats["chunks"] >= 2
        assert stats["workers_spawned"] == 2

    def test_point_error_propagates(self):
        spec = SweepSpec.product(a=(1, -1), b=(2,))
        with pytest.raises(ParameterError):
            run_sweep(product_point, spec, executor="distributed",
                      jobs=2)

    def test_setup_failure_cleans_owned_temp_spool(self, tmp_path,
                                                   monkeypatch):
        """An unpicklable func fails during run setup — before any
        worker spawns — and must not leak the broker's temp spool."""
        import pickle
        import tempfile
        from repro.sweep import distributed
        owned = tmp_path / "owned-spool"

        def fake_mkdtemp(prefix):
            owned.mkdir()
            return str(owned)

        monkeypatch.delenv(SWEEP_SPOOL_ENV, raising=False)
        monkeypatch.setattr(tempfile, "mkdtemp", fake_mkdtemp)
        broker = distributed.DistributedBroker(lambda **kw: 1, jobs=2)
        with pytest.raises((pickle.PicklingError, AttributeError,
                            TypeError)):
            broker.run([{"a": 1}])
        assert not owned.exists()

    def test_spool_env_is_used_and_run_dir_cleaned(self, tmp_path,
                                                   monkeypatch):
        spool = tmp_path / "spool"
        monkeypatch.setenv(SWEEP_SPOOL_ENV, str(spool))
        spec = SweepSpec.product(a=(1, 2, 3), b=(5,))
        result = run_sweep(product_point, spec, executor="distributed",
                           jobs=2)
        assert result.values == [5, 10, 15]
        # The spool survives (external workers may be attached); the
        # completed run directory does not.
        assert spool.is_dir()
        assert not [p for p in spool.iterdir()
                    if p.name.startswith("run-")]

    def test_bogus_spawn_env_raises_parameter_error(self, tmp_path,
                                                    monkeypatch):
        monkeypatch.setenv(SWEEP_SPAWN_ENV, "two")
        with pytest.raises(ParameterError, match=SWEEP_SPAWN_ENV):
            DistributedBroker(product_point, spool=str(tmp_path))

    def test_zero_spawn_broker_steals_everything(self, tmp_path,
                                                 monkeypatch):
        monkeypatch.setenv(SWEEP_SPAWN_ENV, "0")
        broker = DistributedBroker(product_point,
                                   spool=str(tmp_path), jobs=2)
        values = broker.run([{"a": a, "b": 2} for a in (1, 2, 3)])
        assert values == [2, 4, 6]
        assert broker.stats["workers_spawned"] == 0
        assert broker.stats["stolen"] == broker.stats["chunks"]

    def test_external_worker_serves_the_run(self, tmp_path):
        """With spawn=0 and stealing off, only an attached worker can
        make progress — the full `repro worker` service path."""
        spool = str(tmp_path)
        worker = SpoolWorker(spool, worker_id="ext-1", poll=0.01,
                             max_idle=30.0)
        thread = threading.Thread(target=worker.serve_forever,
                                  daemon=True)
        thread.start()
        try:
            broker = DistributedBroker(product_point, spool=spool,
                                       jobs=2, spawn=0, steal=False,
                                       timeout=30.0)
            values = broker.run([{"a": a, "b": 3}
                                 for a in (1, 2, 3, 4)])
            assert values == [3, 6, 9, 12]
            assert worker.stats["points"] == 4
        finally:
            with open(os.path.join(spool, SHUTDOWN_SENTINEL), "w"):
                pass
            thread.join(timeout=10.0)
        assert not thread.is_alive()


@pytest.mark.integration
class TestFaultInjection:
    def test_worker_crash_mid_chunk_is_retried(self, tmp_path):
        """A worker dying before its commit loses the chunk to a live
        worker via the stale-heartbeat watchdog."""
        marker = str(tmp_path / "crashed-once")
        broker = DistributedBroker(
            crash_once_point, spool=str(tmp_path / "spool"), jobs=2,
            chunk_size=1, heartbeat_timeout=0.3, poll=0.02, spawn=2,
            steal=False, timeout=60.0)
        values = broker.run([{"a": a, "marker": marker}
                             for a in (1, 2, 3, 4)])
        assert values == [10, 20, 30, 40]
        assert os.path.exists(marker), "crash point never fired"
        assert broker.stats["requeued"] >= 1
        assert broker.stats["attempts_max"] >= 2

    def test_slow_point_outlives_heartbeat_timeout(self, tmp_path):
        """A point slower than the heartbeat timeout must NOT look
        stale: the worker's ticker thread keeps the heartbeat fresh
        through points of any duration."""
        broker = DistributedBroker(
            slow_point, spool=str(tmp_path), jobs=1, chunk_size=2,
            heartbeat_timeout=0.4, poll=0.02, spawn=1, steal=False,
            timeout=60.0)
        values = broker.run([{"a": a, "delay": 0.5} for a in (1, 2)])
        assert values == [2, 3]
        assert broker.stats["requeued"] == 0

    def test_fresh_claim_of_stale_queued_job_is_not_stolen(self,
                                                           tmp_path):
        """The claim stamps its own mtime: a chunk that sat *queued*
        past the timeout must not be judged stale the moment a live
        worker picks it up."""
        run = SpoolRun.create(str(tmp_path), product_point)
        run.enqueue(0, [{"a": 1, "b": 2}])
        run.open()
        # Backdate the queued job file: rename preserves mtime, so a
        # naive watchdog fallback would see an hours-old claim.
        job = os.path.join(run.queue_dir, os.listdir(run.queue_dir)[0])
        os.utime(job, (1.0, 1.0))
        # The worker also carries a stale heartbeat file from its
        # previous chunk — liveness is the *freshest* signal, so the
        # just-stamped claim must win over the old heartbeat.
        run.heartbeat("hot-join-worker")
        os.utime(os.path.join(run.hb_dir, "hot-join-worker"),
                 (1.0, 1.0))
        _, _, claim_path = run.claim("hot-join-worker")
        assert run.heartbeat_age("hot-join-worker", claim_path) < 60.0

    def test_stale_heartbeat_claim_is_stolen_back(self, tmp_path):
        run = SpoolRun.create(str(tmp_path), product_point)
        run.enqueue(0, [{"a": 1, "b": 2}])
        run.open()
        claim = run.claim("dead-worker")
        assert claim is not None
        _, _, claim_path = claim
        # Backdate both the claim and the (never-written) heartbeat.
        os.utime(claim_path, (1.0, 1.0))
        assert run.heartbeat_age("dead-worker", claim_path) > 1e6

        broker = DistributedBroker(product_point, heartbeat_timeout=0.1)
        broker.stats = {"requeued": 0, "duplicates": 0,
                        "attempts_max": 1}
        attempts = {0: 1}
        assert broker._requeue_stale(run, {}, attempts, {},
                                     {0: [{"a": 1, "b": 2}]},
                                     str(tmp_path))
        assert attempts[0] == 2
        # The chunk is claimable again and completes normally.
        chunk, points, _ = run.claim("live-worker")
        assert chunk == 0 and points == [{"a": 1, "b": 2}]

    def test_live_heartbeat_is_not_stolen(self, tmp_path):
        run = SpoolRun.create(str(tmp_path), product_point)
        run.enqueue(0, [{"a": 1, "b": 2}])
        run.open()
        run.claim("busy-worker")
        run.heartbeat("busy-worker")
        broker = DistributedBroker(product_point,
                                   heartbeat_timeout=30.0)
        broker.stats = {"requeued": 0, "duplicates": 0,
                        "attempts_max": 1}
        assert not broker._requeue_stale(run, {}, {0: 1}, {},
                                         {0: [{"a": 1, "b": 2}]},
                                         str(tmp_path))
        assert run.claim("thief") is None

    def test_retry_exhaustion_raises(self, tmp_path):
        run = SpoolRun.create(str(tmp_path), product_point)
        run.enqueue(0, [{"a": 1, "b": 2}])
        run.open()
        _, _, claim_path = run.claim("dead-worker")
        os.utime(claim_path, (1.0, 1.0))
        broker = DistributedBroker(product_point, heartbeat_timeout=0.1,
                                   max_attempts=3)
        broker.stats = {"requeued": 0, "duplicates": 0,
                        "attempts_max": 1}
        with pytest.raises(RuntimeError, match="claim attempt"):
            broker._requeue_stale(run, {}, {0: 3}, {},
                                  {0: [{"a": 1, "b": 2}]},
                                  str(tmp_path))

    def test_duplicate_result_commit_is_dropped_at_source(self,
                                                          tmp_path):
        run = SpoolRun.create(str(tmp_path), product_point)
        payload = {"chunk": 0, "values": [2]}
        assert run.commit(0, payload, "w1") is True
        assert run.commit(0, payload, "w2") is False
        assert [c for c, _ in run.collect()] == [0]

    def test_late_error_commit_cannot_clobber_good_result(self,
                                                          tmp_path):
        """A presumed-dead worker whose late attempt *failed* must not
        overwrite the committed success of the chunk's re-claimer."""
        run = SpoolRun.create(str(tmp_path), product_point)
        assert run.commit(0, {"chunk": 0, "values": [42]}, "fast")
        bad = {"chunk": 0, "error": RuntimeError("late failure")}
        assert run.commit(0, bad, "slow") is False
        results = dict(run.collect())
        assert results[0]["values"] == [42]
        assert "error" not in results[0]

    def test_worker_counts_duplicate_commit(self, tmp_path):
        """A presumed-dead worker finishing late commits nothing and
        counts the duplicate."""
        run = SpoolRun.create(str(tmp_path), product_point)
        run.enqueue(0, [{"a": 3, "b": 3}])
        run.open()
        # Another worker already committed this chunk.
        run.commit(0, {"chunk": 0, "values": [9]}, "fast-worker")
        worker = SpoolWorker(str(tmp_path), worker_id="slow-worker",
                             poll=0.01)
        assert worker.process_one(run)
        assert worker.stats["duplicate_commits"] == 1
        results = dict(run.collect())
        assert results[0]["values"] == [9]

    def test_commit_into_torn_down_run_is_a_quiet_duplicate(self,
                                                            tmp_path):
        """A worker finishing after the broker removed the run must
        not crash — the late commit just reads as a duplicate."""
        import shutil
        run = SpoolRun.create(str(tmp_path), product_point)
        run.enqueue(0, [{"a": 2, "b": 2}])
        run.open()
        chunk, _, _ = run.claim("slow-worker")
        shutil.rmtree(run.path)
        assert run.commit(chunk, {"chunk": chunk, "values": [4]},
                          "slow-worker") is False
        run.heartbeat("slow-worker")  # must not raise either

    def test_late_claim_of_collected_chunk_is_dropped(self, tmp_path):
        run = SpoolRun.create(str(tmp_path), product_point)
        run.enqueue(0, [{"a": 1, "b": 2}])
        run.open()
        _, _, claim_path = run.claim("slow-worker")
        broker = DistributedBroker(product_point, heartbeat_timeout=0.1)
        broker.stats = {"requeued": 0, "duplicates": 0,
                        "attempts_max": 1}
        # Chunk 0 already collected: the outstanding claim is garbage.
        assert not broker._requeue_stale(
            run, {0: {"chunk": 0, "values": [2]}}, {0: 2}, {},
            {0: [{"a": 1, "b": 2}]}, str(tmp_path))
        assert broker.stats["duplicates"] == 1
        assert not os.path.exists(claim_path)


class TestRetryBudgetAndQuarantine:
    """Error-payload retries, the poison policy, and the env knobs."""

    def test_error_payload_retries_then_succeeds(self, tmp_path):
        marker = str(tmp_path / "marker")
        points = [{"a": a, "marker": marker} for a in range(4)]
        broker = DistributedBroker(fail_once_point,
                                   spool=str(tmp_path / "spool"),
                                   chunk_size=1, spawn=0, steal=True,
                                   poll=0.01, timeout=30.0)
        values = broker.run(points)
        assert values == [a * 10 for a in range(4)]
        assert broker.stats["error_retries"] == 1
        assert broker.stats["steal_errors"] == 1
        assert broker.stats["attempts_max"] == 2
        # The run summary names the chunk that needed extra attempts.
        assert list(broker.stats["attempts"].values()) == [2]
        assert broker.stats["quarantined"] == []

    def test_poison_chunk_raises_by_default(self, tmp_path):
        points = [{"a": a, "poison_at": 1} for a in range(3)]
        broker = DistributedBroker(poison_point,
                                   spool=str(tmp_path / "spool"),
                                   chunk_size=1, spawn=0, steal=True,
                                   poll=0.01, max_attempts=2,
                                   timeout=30.0)
        with pytest.raises(RuntimeError, match="poison"):
            broker.run(points)

    def test_poison_chunk_quarantined_with_partial_results(
            self, tmp_path):
        spool = str(tmp_path / "spool")
        points = [{"a": a, "poison_at": 1} for a in range(3)]
        broker = DistributedBroker(poison_point, spool=spool,
                                   chunk_size=1, spawn=0, steal=True,
                                   poll=0.01, max_attempts=2,
                                   on_poison="quarantine",
                                   timeout=30.0)
        with pytest.warns(ResilienceWarning, match="quarantined"):
            values = broker.run(points)
        assert values == [0, None, 20]
        assert broker.stats["quarantined"] == [1]

        # The poison ledger is JSON, not pickle: inspecting a record a
        # hostile task wrote must never execute attacker-shaped bytes.
        record_path = os.path.join(spool, QUARANTINE_DIR,
                                   "chunk-000001.json")
        with open(record_path, "r", encoding="utf-8") as handle:
            record = json.load(handle)
        assert record["chunk"] == 1
        assert record["points"] == [{"a": 1, "poison_at": 1}]
        assert record["attempts"] == 2
        assert "poison" in record["error"]
        assert isinstance(record["error_type"], str)
        assert record["workers"] == ["broker"]

    def test_env_knobs_configure_the_budget(self, tmp_path,
                                            monkeypatch):
        monkeypatch.setenv(SWEEP_MAX_ATTEMPTS_ENV, "7")
        monkeypatch.setenv(SWEEP_HEARTBEAT_ENV, "2.5")
        broker = DistributedBroker(product_point,
                                   spool=str(tmp_path))
        assert broker.max_attempts == 7
        assert broker.heartbeat_timeout == 2.5
        # Explicit arguments still win over the environment.
        broker = DistributedBroker(product_point, spool=str(tmp_path),
                                   max_attempts=2,
                                   heartbeat_timeout=1.0)
        assert broker.max_attempts == 2
        assert broker.heartbeat_timeout == 1.0

    def test_malformed_env_knob_is_rejected(self, tmp_path,
                                            monkeypatch):
        monkeypatch.setenv(SWEEP_MAX_ATTEMPTS_ENV, "many")
        with pytest.raises(ParameterError,
                           match=SWEEP_MAX_ATTEMPTS_ENV):
            DistributedBroker(product_point, spool=str(tmp_path))
        monkeypatch.delenv(SWEEP_MAX_ATTEMPTS_ENV)
        monkeypatch.setenv(SWEEP_HEARTBEAT_ENV, "soon")
        with pytest.raises(ParameterError,
                           match=SWEEP_HEARTBEAT_ENV):
            DistributedBroker(product_point, spool=str(tmp_path))

    def test_on_poison_is_validated(self, tmp_path):
        with pytest.raises(ParameterError, match="on_poison"):
            DistributedBroker(product_point, spool=str(tmp_path),
                              on_poison="shrug")


class TestSpoolWorker:
    def test_rejects_reserved_worker_id_characters(self, tmp_path):
        with pytest.raises(ParameterError):
            SpoolWorker(str(tmp_path), worker_id="bad@id")
        with pytest.raises(ParameterError):
            SpoolWorker(str(tmp_path), worker_id=f"bad{os.sep}id")

    def test_max_idle_exits(self, tmp_path):
        worker = SpoolWorker(str(tmp_path), poll=0.01, max_idle=0.05)
        stats = worker.serve_forever()
        assert stats["chunks"] == 0

    def test_shutdown_sentinel_exits(self, tmp_path):
        with open(tmp_path / SHUTDOWN_SENTINEL, "w"):
            pass
        worker = SpoolWorker(str(tmp_path), poll=0.01)
        stats = worker.serve_forever()
        assert stats == {"chunks": 0, "points": 0, "errors": 0,
                         "duplicate_commits": 0}

    def test_func_cache_pruned_after_run_closes(self, tmp_path):
        run = SpoolRun.create(str(tmp_path), product_point)
        run.enqueue(0, [{"a": 2, "b": 2}])
        run.open()
        worker = SpoolWorker(str(tmp_path), worker_id="w1", poll=0.01)
        assert worker.process_one(run)
        assert run.path in worker._funcs
        run.mark_done()
        worker._prune_func_cache()
        assert worker._funcs == {}

    def test_point_error_ships_instead_of_killing_worker(self,
                                                         tmp_path):
        run = SpoolRun.create(str(tmp_path), product_point)
        run.enqueue(0, [{"a": -1, "b": 2}])
        run.open()
        worker = SpoolWorker(str(tmp_path), worker_id="w1", poll=0.01)
        assert worker.process_one(run)
        assert worker.stats["errors"] == 1
        results = dict(run.collect())
        assert isinstance(results[0]["error"], ParameterError)

    def test_timeout_bounds_total_wall_clock(self, tmp_path):
        """A wedged (forever-empty) spool cannot hang the worker past
        its --timeout deadline."""
        worker = SpoolWorker(str(tmp_path), poll=0.01, timeout=0.2)
        started = time.monotonic()
        stats = worker.serve_forever()
        assert time.monotonic() - started < 5.0
        assert stats["chunks"] == 0

    def test_timeout_clamps_backed_off_sleeps(self, tmp_path):
        """The deadline wins over the idle-poll backoff: a huge poll
        interval must not stretch the worker past its timeout."""
        worker = SpoolWorker(str(tmp_path), poll=30.0, timeout=0.2)
        started = time.monotonic()
        worker.serve_forever()
        assert time.monotonic() - started < 5.0

    def test_idle_poll_backs_off_exponentially(self, tmp_path):
        """Idle polls double per empty scan, capped at max_poll."""
        worker = SpoolWorker(str(tmp_path), poll=0.01, max_poll=0.05)
        delays = [worker.poll]
        for _ in range(5):
            delays.append(worker._next_idle_delay(delays[-1]))
        assert delays == [0.01, 0.02, 0.04, 0.05, 0.05, 0.05]

    def test_default_backoff_ceiling(self, tmp_path):
        worker = SpoolWorker(str(tmp_path), poll=0.05)
        assert worker.max_poll == 2.0
        delay = worker.poll
        for _ in range(20):
            delay = worker._next_idle_delay(delay)
        assert delay == 2.0

    def test_rejects_bad_timeout_and_max_poll(self, tmp_path):
        with pytest.raises(ParameterError):
            SpoolWorker(str(tmp_path), timeout=0.0)
        with pytest.raises(ParameterError):
            SpoolWorker(str(tmp_path), max_poll=-1.0)


class TestWorkerCLI:
    def test_requires_spool(self, monkeypatch, capsys):
        monkeypatch.delenv(SWEEP_SPOOL_ENV, raising=False)
        assert worker_main([]) == 1
        assert "no spool directory" in capsys.readouterr().out

    def test_serves_until_shutdown(self, tmp_path, capsys):
        with open(tmp_path / SHUTDOWN_SENTINEL, "w"):
            pass
        assert worker_main(["--spool", str(tmp_path), "--id", "cli-1",
                            "--poll", "0.01"]) == 0
        assert "worker cli-1" in capsys.readouterr().out

    def test_reads_spool_from_env(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv(SWEEP_SPOOL_ENV, str(tmp_path))
        with open(tmp_path / SHUTDOWN_SENTINEL, "w"):
            pass
        assert worker_main(["--max-idle", "5"]) == 0
        assert "served 0 chunk(s)" in capsys.readouterr().out

    def test_timeout_flag_exits_without_sentinel(self, tmp_path,
                                                 capsys):
        """`repro worker --timeout` returns even when nothing ever
        tells the worker to stop — the wedged-broker escape hatch."""
        assert worker_main(["--spool", str(tmp_path), "--poll", "0.01",
                            "--timeout", "0.2"]) == 0
        assert "served 0 chunk(s)" in capsys.readouterr().out
