"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.device import MTJDevice, PAPER_EVAL_DEVICE
from repro.stack import build_reference_stack


@pytest.fixture
def eval_device():
    """A fresh paper evaluation device (eCD = 35 nm)."""
    return MTJDevice(PAPER_EVAL_DEVICE)


@pytest.fixture
def stack35():
    """The reference stack at eCD = 35 nm."""
    return build_reference_stack(35e-9)


@pytest.fixture
def stack55():
    """The reference stack at eCD = 55 nm."""
    return build_reference_stack(55e-9)


@pytest.fixture
def rng():
    """A deterministic random generator."""
    return np.random.default_rng(20200309)
