"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.device import MTJDevice, PAPER_EVAL_DEVICE
from repro.stack import build_reference_stack


@pytest.fixture(autouse=True, scope="session")
def _hermetic_environment():
    """Keep the suite independent of the operator's shell.

    A developer with a persistent kernel cache or a preferred sweep
    executor configured must see the same tier-1 results as CI, so the
    opt-in environment variables are stripped for the whole session
    (tests that exercise them set them explicitly via monkeypatch).
    """
    saved = {}
    for name in ("REPRO_KERNEL_CACHE", "REPRO_SWEEP_EXECUTOR",
                 "REPRO_ENGINE_BACKEND"):
        saved[name] = os.environ.pop(name, None)
    yield
    for name, value in saved.items():
        if value is not None:
            os.environ[name] = value


@pytest.fixture
def eval_device():
    """A fresh paper evaluation device (eCD = 35 nm)."""
    return MTJDevice(PAPER_EVAL_DEVICE)


@pytest.fixture
def stack35():
    """The reference stack at eCD = 35 nm."""
    return build_reference_stack(35e-9)


@pytest.fixture
def stack55():
    """The reference stack at eCD = 55 nm."""
    return build_reference_stack(55e-9)


@pytest.fixture
def rng():
    """A deterministic random generator."""
    return np.random.default_rng(20200309)
