"""Tests for the multi-macrospin (micromagnetic-lite) free layer."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.intra import IntraCellModel
from repro.device import MTJDevice, PAPER_EVAL_DEVICE
from repro.errors import ParameterError
from repro.llg import MacrospinParameters, MultiMacrospinFL, make_fl_grid


@pytest.fixture(scope="module")
def device():
    return MTJDevice(PAPER_EVAL_DEVICE)


@pytest.fixture(scope="module")
def params(device):
    return MacrospinParameters.from_device(device,
                                           use_activation_volume=False)


@pytest.fixture(scope="module")
def grid(device):
    return make_fl_grid(device.stack.radius, n_across=5)


def make_fl(params, grid, device, hz_profile=None):
    return MultiMacrospinFL(params, grid,
                            device.stack.free_layer.thickness,
                            hz_profile=hz_profile)


class TestGrid:
    def test_cells_inside_disk(self, grid, device):
        radii = np.hypot(grid.positions[:, 0], grid.positions[:, 1])
        assert np.all(radii <= device.stack.radius)

    def test_cell_size(self, grid, device):
        assert grid.cell_size == pytest.approx(
            2 * device.stack.radius / 5)

    def test_area_close_to_disk(self, grid, device):
        grid_area = grid.n_cells * grid.cell_size ** 2
        disk_area = math.pi * device.stack.radius ** 2
        assert grid_area == pytest.approx(disk_area, rel=0.15)

    def test_neighbors_are_adjacent(self, grid):
        for i, j in grid.neighbors:
            distance = np.linalg.norm(grid.positions[i]
                                      - grid.positions[j])
            assert distance == pytest.approx(grid.cell_size, rel=1e-9)

    def test_too_coarse_rejected(self):
        with pytest.raises(ParameterError):
            make_fl_grid(17.5e-9, n_across=1)


class TestDynamics:
    def test_uniform_state_is_stationary_under_exchange(self, params,
                                                        grid, device):
        fl = make_fl(params, grid, device)
        m = fl.uniform_state(+1.0)
        h = fl.effective_field(m)
        # Exchange vanishes for a uniform state; only anisotropy remains.
        np.testing.assert_allclose(h[:, 2], params.hk, rtol=1e-9)
        np.testing.assert_allclose(h[:, :2], 0.0, atol=1e-6)

    def test_norms_preserved(self, params, grid, device):
        fl = make_fl(params, grid, device)
        rng = np.random.default_rng(1)
        m = fl.uniform_state(-1.0)
        m[:, 0] += 0.1 * rng.standard_normal(grid.n_cells)
        m /= np.linalg.norm(m, axis=1, keepdims=True)
        for _ in range(50):
            m = fl.step(m, 1e-12, rng=rng, a_j=2e3)
        np.testing.assert_allclose(np.linalg.norm(m, axis=1), 1.0,
                                   rtol=1e-9)

    def test_exchange_pulls_spins_together(self, params, grid, device):
        # High damping so the spin-wave ringing decays within the test
        # horizon; at the real alpha=0.015 the modes ring for many ns.
        damped = MacrospinParameters(
            ms=params.ms, hk=params.hk, volume=params.volume,
            alpha=0.5, eta=params.eta)
        fl = MultiMacrospinFL(damped, grid,
                              device.stack.free_layer.thickness)
        rng = np.random.default_rng(2)
        m = fl.uniform_state(+1.0)
        m[:, 0] += 0.3 * rng.standard_normal(grid.n_cells)
        m /= np.linalg.norm(m, axis=1, keepdims=True)
        spread0 = float(np.std(m[:, 0]))
        for _ in range(3000):
            m = fl.step(m, 1e-12)
        assert float(np.std(m[:, 0])) < 0.2 * spread0
        assert fl.average_mz(m) > 0.99

    def test_threshold_matches_geometric_macrospin(self, params, grid,
                                                   device):
        fl = make_fl(params, grid, device)
        from repro.llg import stt_critical_current
        single = MacrospinParameters(
            ms=params.ms, hk=params.hk,
            volume=fl.params.volume * grid.n_cells,
            alpha=params.alpha, eta=params.eta)
        assert fl.total_critical_current == pytest.approx(
            stt_critical_current(single), rel=1e-9)


class TestSwitching:
    def test_switches_above_threshold(self, params, grid, device):
        fl = make_fl(params, grid, device)
        t_sw = fl.switch(2.0 * fl.total_critical_current,
                         max_time=30e-9, rng=3)
        assert t_sw is not None
        assert 0.1e-9 < t_sw < 30e-9

    def test_no_switch_below_threshold(self, params, grid, device):
        fl = make_fl(params, grid, device)
        t_sw = fl.switch(0.3 * fl.total_critical_current,
                         max_time=5e-9, rng=4)
        assert t_sw is None

    def test_nonuniform_profile_changes_tw(self, params, grid, device):
        """The paper's Fig. 3d non-uniformity, expressed dynamically
        (the Wang et al. [10] observation)."""
        intra = IntraCellModel()

        def profile(pos):
            pts = np.column_stack([pos, np.zeros(pos.shape[0])])
            return intra.field_map(device.params.ecd, pts)[:, 2]

        fl_real = make_fl(params, grid, device, hz_profile=profile)
        mean_field = float(np.mean(fl_real.hz_local))
        fl_flat = make_fl(
            params, grid, device,
            hz_profile=lambda p: np.full(p.shape[0], mean_field))

        current = 2.0 * fl_real.total_critical_current
        t_real = fl_real.switch(current, max_time=30e-9, rng=5)
        t_flat = fl_flat.switch(current, max_time=30e-9, rng=5)
        assert t_real is not None and t_flat is not None
        assert t_real != pytest.approx(t_flat, rel=1e-3)

    def test_local_field_profile_loaded(self, params, grid, device):
        intra = IntraCellModel()

        def profile(pos):
            pts = np.column_stack([pos, np.zeros(pos.shape[0])])
            return intra.field_map(device.params.ecd, pts)[:, 2]

        fl = make_fl(params, grid, device, hz_profile=profile)
        # Center cells see the strongest (most negative) field.
        radii = np.hypot(grid.positions[:, 0], grid.positions[:, 1])
        center = fl.hz_local[np.argmin(radii)]
        edge = fl.hz_local[np.argmax(radii)]
        assert center < edge < 0
