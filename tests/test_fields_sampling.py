"""Tests for the spatial sampling helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.fields import disk_average, grid3d, radial_line
from repro.fields.sampling import disk_quadrature


class TestRadialLine:
    def test_center_included_for_odd_counts(self):
        positions, points = radial_line(20e-9, n_points=11)
        assert positions[5] == pytest.approx(0.0)
        np.testing.assert_allclose(points[5], 0.0, atol=1e-20)

    def test_extent(self):
        positions, _ = radial_line(20e-9, n_points=5, margin=0.8)
        assert positions[0] == pytest.approx(-16e-9)
        assert positions[-1] == pytest.approx(16e-9)

    def test_plane_height(self):
        _, points = radial_line(20e-9, n_points=3, z=4e-9)
        np.testing.assert_allclose(points[:, 2], 4e-9)

    def test_minimum_points(self):
        with pytest.raises(ParameterError):
            radial_line(20e-9, n_points=1)


class TestGrid3d:
    def test_shape(self):
        points, shape = grid3d(50e-9, n_per_axis=5)
        assert shape == (5, 5, 5)
        assert points.shape == (125, 3)

    def test_extent_and_zrange(self):
        points, _ = grid3d(50e-9, n_per_axis=3, z_range=(-10e-9, 20e-9))
        assert points[:, 0].min() == pytest.approx(-50e-9)
        assert points[:, 0].max() == pytest.approx(50e-9)
        assert points[:, 2].min() == pytest.approx(-10e-9)
        assert points[:, 2].max() == pytest.approx(20e-9)


class TestDiskQuadrature:
    def test_weights_normalized(self):
        _, weights = disk_quadrature(20e-9, n_radial=6, n_angular=12)
        assert np.sum(weights) == pytest.approx(1.0)

    def test_points_inside_disk(self):
        points, _ = disk_quadrature(20e-9)
        r = np.hypot(points[:, 0], points[:, 1])
        assert np.all(r < 20e-9)

    def test_average_of_constant_field(self):
        avg = disk_average(
            lambda pts: np.tile([1.0, -2.0, 3.0], (pts.shape[0], 1)),
            radius=20e-9)
        np.testing.assert_allclose(avg, [1.0, -2.0, 3.0], rtol=1e-12)

    def test_average_of_linear_field_is_center_value(self):
        # For H = c * x the disk average vanishes by symmetry.
        avg = disk_average(
            lambda pts: np.stack(
                [pts[:, 0] * 1e9, np.zeros(pts.shape[0]),
                 np.zeros(pts.shape[0])], axis=1),
            radius=20e-9)
        assert abs(avg[0]) < 1e-12

    def test_average_of_quadratic_profile(self):
        # For Hz = r^2 the exact disk average is R^2/2.
        radius = 20e-9

        def field(pts):
            r2 = pts[:, 0] ** 2 + pts[:, 1] ** 2
            return np.stack([np.zeros_like(r2), np.zeros_like(r2), r2],
                            axis=1)

        avg = disk_average(field, radius=radius, n_radial=32,
                           n_angular=8)
        assert avg[2] == pytest.approx(radius ** 2 / 2, rel=1e-3)
