"""The chaos matrix: every seeded fault plan, end to end.

One test per ``(seed, kind)`` cell. Each cell builds its scenario from
:class:`FaultPlan` alone — which chunk dies, which byte flips, which
rename fails all derive from the seed — so a red cell reproduces
locally with ``pytest -k 'chaos and <kind> and <seed>'`` and nothing
else. The CI ``chaos-smoke`` job runs exactly this file.
"""

import dataclasses
import os
import threading
import time

import numpy as np
import pytest

from repro.errors import ResilienceWarning, RunAborted
from repro.memsys import build_engine
from repro.resilience import (
    FAULT_KINDS,
    CheckpointManager,
    FaultPlan,
    WorkerKilled,
)
from repro.sweep.distributed import (
    SHUTDOWN_SENTINEL,
    DistributedBroker,
    SpoolWorker,
)
from repro.units import nm_to_m

SEEDS = (0, 1)


def chaos_point(x, stall_target=None, delay=0.6):
    """One grid point; the stall-heartbeat scenario's target point
    sleeps past the broker's watchdog while its heartbeat is frozen."""
    if stall_target is not None and x == stall_target:
        time.sleep(delay)
    return x * 3 + 1


def _worker_thread(spool, faults, worker_id):
    """A spool worker in a thread; an injected kill ends the thread
    with its claim left to go stale, exactly like a dead process."""

    def serve():
        worker = SpoolWorker(spool, worker_id=worker_id, poll=0.02,
                             max_idle=30.0, faults=faults)
        try:
            worker.serve_forever()
        except WorkerKilled:
            pass

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    return thread


def _stop_workers(spool, *threads):
    """Raise the shutdown sentinel so idle workers exit promptly."""
    with open(os.path.join(spool, SHUTDOWN_SENTINEL), "w"):
        pass
    for thread in threads:
        thread.join(timeout=30.0)
        assert not thread.is_alive()


def _broker(spool, plan, **kwargs):
    kwargs.setdefault("chunk_size", 1)
    kwargs.setdefault("spawn", 0)
    kwargs.setdefault("poll", 0.02)
    kwargs.setdefault("timeout", 60.0)
    points = [{"x": x} for x in range(plan.n_chunks)]
    return DistributedBroker(chaos_point, spool=spool,
                             **kwargs), points


@pytest.mark.integration
@pytest.mark.parametrize("seed", SEEDS)
class TestChaosMatrix:
    def test_worker_kill(self, seed, tmp_path):
        """kill-worker-at-chunk-N: the claim goes stale, the chunk is
        stolen back, and a clean retry completes the sweep."""
        plan = FaultPlan(seed, "worker-kill")
        spool = str(tmp_path)
        faults = plan.worker_faults()
        broker, points = _broker(spool, plan, steal=False,
                                 heartbeat_timeout=0.3)
        doomed = _worker_thread(spool, faults, "doomed")
        threads = [doomed]

        # The doomed worker serves alone until its kill fires (so the
        # target chunk cannot be raced away from it); only then does
        # the clean replacement attach to pick up the stale claim.
        def launch_clean_after_kill():
            stop_at = time.monotonic() + 30.0
            while faults.kills == 0 and time.monotonic() < stop_at:
                time.sleep(0.02)
            threads.append(_worker_thread(spool, None, "clean"))

        launcher = threading.Thread(target=launch_clean_after_kill,
                                    daemon=True)
        launcher.start()
        try:
            values = broker.run(points)
        finally:
            launcher.join(timeout=60.0)
            _stop_workers(spool, *threads)
        assert faults.kills == 1
        assert values == [chaos_point(**p) for p in points]
        assert broker.stats["requeued"] >= 1
        assert broker.stats["attempts_max"] >= 2

    def test_poison_chunk(self, seed, tmp_path):
        """poison-chunk: the chunk fails every attempt, is quarantined
        with a record, and the sweep completes with partial results."""
        plan = FaultPlan(seed, "poison-chunk")
        spool = str(tmp_path)
        broker, points = _broker(spool, plan, steal=False,
                                 heartbeat_timeout=5.0,
                                 max_attempts=2,
                                 on_poison="quarantine")
        worker = _worker_thread(spool, plan.worker_faults(), "w1")
        try:
            with pytest.warns(ResilienceWarning, match="quarantined"):
                values = broker.run(points)
        finally:
            _stop_workers(spool, worker)
        expected = [chaos_point(**p) for p in points]
        expected[plan.target_chunk] = None
        assert values == expected
        assert broker.stats["quarantined"] == [plan.target_chunk]
        record = os.path.join(
            spool, "quarantine",
            f"chunk-{plan.target_chunk:06d}.json")
        assert os.path.exists(record)

    def test_corrupt_checkpoint(self, seed, tmp_path, eval_device):
        """corrupt-checkpoint: the checksum gate catches the plan's
        byte flip and the resume degrades to a clean, correct
        restart."""
        plan = FaultPlan(seed, "corrupt-checkpoint")
        engine_kwargs = dict(pitch=nm_to_m(70.0), rows=16, cols=16,
                             ecc="secded", workload="random")
        base = build_engine(eval_device, **engine_kwargs).run(
            4096, rng=np.random.default_rng(seed), batch_size=1024)

        manager = CheckpointManager(str(tmp_path))

        def kill_after_two(done, total, calls=[]):
            calls.append(1)
            if len(calls) >= 2:
                raise RunAborted("chaos kill")

        with pytest.raises(RunAborted):
            build_engine(eval_device, **engine_kwargs).run(
                4096, rng=np.random.default_rng(seed),
                batch_size=1024, checkpoint=manager,
                progress=kill_after_two)
        plan.corrupt(os.path.join(str(tmp_path), "run.ckpt"))

        with pytest.warns(ResilienceWarning, match="corrupt"):
            resumed = build_engine(eval_device, **engine_kwargs).run(
                4096, rng=np.random.default_rng(seed),
                batch_size=1024, checkpoint=manager, resume=True)
        assert manager.corrupt_fallbacks == 1
        assert dataclasses.asdict(resumed) == dataclasses.asdict(base)

    def test_eio_on_rename(self, seed, tmp_path):
        """eio-on-rename: the scheduled commit failure is counted and
        survived; later checkpoints land normally."""
        plan = FaultPlan(seed, "eio-on-rename")
        fs = plan.filesystem()
        manager = CheckpointManager(str(tmp_path), fs=fs)
        outcomes = []
        for _ in range(plan.replace_ordinal + 1):
            if manager.saves + manager.save_failures \
                    + 1 == plan.replace_ordinal:
                with pytest.warns(ResilienceWarning,
                                  match="save failed"):
                    outcomes.append(manager.save("run", {"key": "k"}))
            else:
                outcomes.append(manager.save("run", {"key": "k"}))
        assert outcomes.count(False) == 1
        assert manager.save_failures == 1
        assert fs.injected == 1
        # The surviving checkpoint is intact and loadable.
        assert manager.load("run", expect_key="k") is not None

    def test_stall_heartbeat(self, seed, tmp_path):
        """stall-heartbeat: a live worker that stops heartbeating is
        declared dead and its chunk stolen; at-most-once commit keeps
        the duplicate harmless."""
        plan = FaultPlan(seed, "stall-heartbeat")
        spool = str(tmp_path)
        points = [{"x": x, "stall_target": plan.target_chunk}
                  for x in range(plan.n_chunks)]
        # steal=False: the stalled worker is the only executor, so the
        # target chunk is guaranteed to run under the frozen heartbeat
        # (an inline-stealing broker could drain the queue first).
        broker = DistributedBroker(chaos_point, spool=spool,
                                   chunk_size=1, spawn=0, steal=False,
                                   heartbeat_timeout=0.25, poll=0.02,
                                   timeout=60.0)
        worker = _worker_thread(spool, plan.worker_faults(), "stalled")
        try:
            values = broker.run(points)
        finally:
            _stop_workers(spool, worker)
        assert values == [chaos_point(**p) for p in points]
        assert broker.stats["requeued"] >= 1

    def _corrupted_commit_recovers(self, plan, spool):
        """Shared body of the two result-corruption cells: the worker
        mangles its own committed result file, the broker's frame
        verification rejects it as a counted integrity miss (never a
        wrong value), and a clean retry completes the sweep."""
        faults = plan.worker_faults()
        broker, points = _broker(spool, plan, steal=False,
                                 heartbeat_timeout=5.0,
                                 max_attempts=3)
        worker = _worker_thread(spool, faults, "mangler")
        try:
            values = broker.run(points)
        finally:
            _stop_workers(spool, worker)
        assert faults.corruptions == 1
        assert values == [chaos_point(**p) for p in points]
        assert broker.stats["integrity_rejects"] >= 1
        assert broker.stats["error_retries"] >= 1

    def test_torn_write(self, seed, tmp_path):
        """torn-write: flipped bytes inside a committed result file
        are caught by the frame digest and retried cleanly."""
        self._corrupted_commit_recovers(
            FaultPlan(seed, "torn-write"), str(tmp_path))

    def test_truncated_result(self, seed, tmp_path):
        """truncated-result: a result file cut mid-write is caught by
        the frame length check and retried cleanly."""
        self._corrupted_commit_recovers(
            FaultPlan(seed, "truncated-result"), str(tmp_path))


def test_matrix_covers_every_fault_kind():
    """Adding a FAULT_KINDS member without a matrix cell is a test
    failure, not a silent coverage gap."""
    covered = {name[len("test_"):].replace("_", "-")
               for name in dir(TestChaosMatrix)
               if name.startswith("test_")}
    assert covered == set(FAULT_KINDS)
