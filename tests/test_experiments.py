"""Tests for the figure-reproduction experiments.

Each experiment must run, produce a well-formed result, and satisfy every
paper-vs-measured criterion it declares — these are the headline
reproduction checks of the repository.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    ExperimentResult,
    render,
    synthetic_intra_dataset,
)
from repro.experiments import runner
from repro.experiments import (
    fig2a,
    fig2b,
    fig3c,
    fig3d,
    fig4a,
    fig4b,
    fig4c,
    fig5,
    fig6a,
    fig6b,
)

pytestmark = pytest.mark.integration


@pytest.fixture(scope="module")
def all_results():
    return {name: module.run()
            for name, module in runner.EXPERIMENTS.items()}


class TestAllExperiments:
    def test_every_experiment_passes(self, all_results):
        failed = {
            name: [c.metric for c in result.comparisons if not c.passed]
            for name, result in all_results.items()
            if not result.all_passed
        }
        assert not failed, f"failing criteria: {failed}"

    def test_result_structure(self, all_results):
        for name, result in all_results.items():
            assert isinstance(result, ExperimentResult)
            assert result.experiment_id == name
            assert result.rows, name
            assert result.headers, name
            for row in result.rows:
                assert len(row) == len(result.headers), name

    def test_series_well_formed(self, all_results):
        for name, result in all_results.items():
            for series_name, (x, y) in result.series.items():
                x = np.asarray(x, dtype=float)
                y = np.asarray(y, dtype=float)
                assert x.shape == y.shape, (name, series_name)

    def test_render_smoke(self, all_results):
        for result in all_results.values():
            text = render(result)
            assert result.experiment_id in text
            assert "paper vs measured" in text


class TestSyntheticDataset:
    def test_deterministic(self):
        a = synthetic_intra_dataset(seed=99)
        b = synthetic_intra_dataset(seed=99)
        assert a.hz_mean == b.hz_mean

    def test_different_seeds_differ(self):
        a = synthetic_intra_dataset(seed=1)
        b = synthetic_intra_dataset(seed=2)
        assert a.hz_mean != b.hz_mean

    def test_structure(self):
        ds = synthetic_intra_dataset()
        assert len(ds.ecds) == 5
        assert len(ds.hz_devices[0]) == 10
        assert all(std > 0 for std in ds.hz_std)


class TestSpecificAnchors:
    def test_fig2a_extraction(self, all_results):
        rows = dict((r[0], r[1]) for r in all_results["fig2a"].rows)
        assert rows["Hsw_p"] > 0 > rows["Hsw_n"]
        assert rows["Hoffset"] > 0

    def test_fig4a_table_span(self, all_results):
        table = all_results["fig4a"].extras["class_table_oe"]
        assert table[(0, 0)] < 0 < table[(4, 4)]

    def test_fig4b_thresholds_ordered(self, all_results):
        thresholds = all_results["fig4b"].extras["thresholds_nm"]
        # Larger devices need larger pitch for the same Psi.
        assert thresholds[20.0] < thresholds[35.0] < thresholds[55.0]

    def test_fig5_psi_values(self, all_results):
        psi = all_results["fig5"].extras["psi"]
        assert psi[1.5] > psi[2.0] > psi[3.0]

    def test_fig6b_marginal_degradation(self, all_results):
        assert 0 <= all_results["fig6b"].extras[
            "degradation_at_25c"] < 5.0


class TestRunnerExport:
    def test_export_writes_files(self, tmp_path, all_results):
        result = all_results["fig4a"]
        runner.export(result, str(tmp_path))
        assert (tmp_path / "fig4a.csv").exists()
        assert (tmp_path / "fig4a_comparison.csv").exists()
        assert (tmp_path / "fig4a_series.json").exists()
