"""Request coalescing: shared runs, fan-out, cancellation refcounts."""

import asyncio
import threading

import pytest

from repro.errors import ParameterError, RunAborted
from repro.service.coalesce import Coalescer

KEY = "f" * 32


def _gated_thunk(calls, release, result=None):
    """A blocking runner that parks until the test releases it."""
    def thunk(abort, publish):
        calls.append(threading.get_ident())
        release.wait(30.0)
        if abort.is_set():
            raise RunAborted("abandoned")
        publish(1, 1)
        return result if result is not None else {"value": 42}
    return thunk


async def _wait_for(predicate, timeout=10.0):
    """Poll ``predicate`` on the loop until true (or fail)."""
    step = 0.005
    waited = 0.0
    while not predicate():
        await asyncio.sleep(step)
        waited += step
        assert waited < timeout, "condition never became true"


class TestCoalescing:
    def test_concurrent_identical_queries_run_once(self):
        """The tentpole invariant: N concurrent identical queries cost
        exactly one engine run."""
        calls = []
        release = threading.Event()
        thunk = _gated_thunk(calls, release)

        async def main():
            coalescer = Coalescer()
            tasks = [asyncio.create_task(coalescer.run(KEY, thunk))
                     for _ in range(5)]
            await _wait_for(
                lambda: coalescer.is_running(KEY)
                and coalescer._runs[KEY].subscribers == 5)
            release.set()
            results = await asyncio.gather(*tasks)
            assert results == [{"value": 42}] * 5
            assert coalescer.started == 1
            assert coalescer.joined == 4
            assert coalescer.in_flight() == 0

        asyncio.run(main())
        assert len(calls) == 1

    def test_different_keys_run_separately(self):
        calls = []
        release = threading.Event()
        release.set()
        thunk = _gated_thunk(calls, release)

        async def main():
            coalescer = Coalescer()
            await asyncio.gather(coalescer.run("a" * 32, thunk),
                                 coalescer.run("b" * 32, thunk))
            assert coalescer.started == 2
            assert coalescer.joined == 0

        asyncio.run(main())
        assert len(calls) == 2

    def test_sequential_queries_run_twice(self):
        """Coalescing is for *in-flight* overlap only — a finished run
        is the memo cache's job, not the coalescer's."""
        calls = []
        release = threading.Event()
        release.set()
        thunk = _gated_thunk(calls, release)

        async def main():
            coalescer = Coalescer()
            await coalescer.run(KEY, thunk)
            await coalescer.run(KEY, thunk)
            assert coalescer.started == 2

        asyncio.run(main())
        assert len(calls) == 2

    def test_progress_fans_out_to_every_subscriber(self):
        release = threading.Event()
        thunk = _gated_thunk([], release)
        seen = {"a": [], "b": []}

        async def main():
            coalescer = Coalescer()
            tasks = [
                asyncio.create_task(coalescer.run(
                    KEY, thunk,
                    on_progress=lambda d, t, _n=name:
                        seen[_n].append((d, t))))
                for name in ("a", "b")]
            await _wait_for(
                lambda: coalescer.is_running(KEY)
                and coalescer._runs[KEY].subscribers == 2)
            release.set()
            await asyncio.gather(*tasks)

        asyncio.run(main())
        assert seen == {"a": [(1, 1)], "b": [(1, 1)]}


class TestCancellation:
    def test_one_subscriber_cancelling_keeps_the_run_alive(self):
        """The satellite invariant: a subscriber abandoning a shared
        run does not cancel it for the others."""
        calls = []
        release = threading.Event()
        thunk = _gated_thunk(calls, release)

        async def main():
            coalescer = Coalescer()
            tasks = [asyncio.create_task(coalescer.run(KEY, thunk))
                     for _ in range(3)]
            await _wait_for(
                lambda: coalescer.is_running(KEY)
                and coalescer._runs[KEY].subscribers == 3)
            run = coalescer._runs[KEY]
            tasks[0].cancel()
            with pytest.raises(asyncio.CancelledError):
                await tasks[0]
            assert not run.abort.is_set()
            release.set()
            results = await asyncio.gather(*tasks[1:])
            assert results == [{"value": 42}] * 2
            assert coalescer.aborted == 0
            assert coalescer.started == 1

        asyncio.run(main())
        assert len(calls) == 1

    def test_last_subscriber_cancelling_aborts_the_run(self):
        calls = []
        release = threading.Event()
        thunk = _gated_thunk(calls, release)

        async def main():
            coalescer = Coalescer()
            tasks = [asyncio.create_task(coalescer.run(KEY, thunk))
                     for _ in range(2)]
            await _wait_for(
                lambda: coalescer.is_running(KEY)
                and coalescer._runs[KEY].subscribers == 2)
            run = coalescer._runs[KEY]
            for task in tasks:
                task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)
            assert run.abort.is_set()
            assert coalescer.aborted == 1
            release.set()   # thunk wakes, sees abort, raises RunAborted
            await _wait_for(lambda: coalescer.in_flight() == 0)

        asyncio.run(main())
        assert len(calls) == 1


class TestErrorPropagation:
    def test_errors_reach_every_subscriber(self):
        release = threading.Event()

        def thunk(abort, publish):
            release.wait(30.0)
            raise ParameterError("bad physics")

        async def main():
            coalescer = Coalescer()
            tasks = [asyncio.create_task(coalescer.run(KEY, thunk))
                     for _ in range(3)]
            await _wait_for(
                lambda: coalescer.is_running(KEY)
                and coalescer._runs[KEY].subscribers == 3)
            release.set()
            results = await asyncio.gather(*tasks,
                                           return_exceptions=True)
            assert all(isinstance(r, ParameterError)
                       for r in results)

        asyncio.run(main())
