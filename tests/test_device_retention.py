"""Tests for the Neel-Arrhenius retention statistics."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.device import (
    fit_rate,
    retention_failure_probability,
    retention_time,
)
from repro.device.retention import (
    SECONDS_PER_YEAR,
    array_retention_failure_probability,
    flip_rate,
    required_delta,
)


class TestRatesAndTimes:
    def test_rate_formula(self):
        assert flip_rate(40.0, 1e9) == pytest.approx(
            1e9 * math.exp(-40.0))

    def test_retention_inverse_of_rate(self):
        assert retention_time(40.0) == pytest.approx(
            1.0 / flip_rate(40.0))

    def test_each_delta_unit_is_factor_e(self):
        assert retention_time(41.0) / retention_time(40.0) == (
            pytest.approx(math.e))

    def test_storage_class_rule(self):
        # Delta ~ 60 gives >10 years at f0 = 1 GHz, Delta ~ 40 does not.
        assert retention_time(60.0) > 10 * SECONDS_PER_YEAR
        assert retention_time(40.0) < 10 * SECONDS_PER_YEAR

    def test_required_delta_roundtrip(self):
        delta = required_delta(10 * SECONDS_PER_YEAR)
        assert retention_time(delta) == pytest.approx(
            10 * SECONDS_PER_YEAR, rel=1e-9)


class TestFailureProbability:
    def test_short_interval_linear(self):
        delta, dt = 45.0, 1.0
        rate = flip_rate(delta)
        assert retention_failure_probability(delta, dt) == pytest.approx(
            rate * dt, rel=1e-6)

    def test_long_interval_saturates(self):
        assert retention_failure_probability(5.0, 1e6) == pytest.approx(
            1.0)

    def test_monotone_in_delta(self):
        deltas = np.array([30.0, 40.0, 50.0, 60.0])
        probs = retention_failure_probability(deltas, 1e5)
        assert np.all(np.diff(probs) < 0)

    def test_vectorized_matches_scalar(self):
        deltas = np.array([35.0, 45.0])
        vec = retention_failure_probability(deltas, 10.0)
        assert vec[0] == pytest.approx(
            retention_failure_probability(35.0, 10.0))

    def test_negative_delta_rejected(self):
        with pytest.raises(ValueError):
            retention_failure_probability(-1.0, 10.0)


class TestArrayLevel:
    def test_array_worse_than_bit(self):
        p_bit = retention_failure_probability(45.0, 1e4)
        p_arr = array_retention_failure_probability(45.0, 1e4, 1024)
        assert p_arr > p_bit

    def test_small_probability_scales_with_bits(self):
        p1 = array_retention_failure_probability(50.0, 1.0, 1)
        p1k = array_retention_failure_probability(50.0, 1.0, 1000)
        assert p1k == pytest.approx(1000 * p1, rel=1e-3)

    def test_fit_rate_units(self):
        # FIT = failures per 1e9 device-hours.
        delta = 40.0
        fits = fit_rate(delta)
        per_hour = flip_rate(delta) * 3600.0
        assert fits == pytest.approx(per_hour * 1e9)
