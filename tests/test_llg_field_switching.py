"""Tests for Stoner-Wohlfarth field switching and its LLG validation."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.device import MTJDevice, PAPER_EVAL_DEVICE
from repro.errors import ParameterError, SimulationError
from repro.llg import (
    MacrospinParameters,
    astroid_switching_field,
    simulate_switching_field,
)


@pytest.fixture(scope="module")
def params():
    return MacrospinParameters.from_device(MTJDevice(PAPER_EVAL_DEVICE))


class TestAstroid:
    def test_aligned_field_threshold_is_hk(self):
        assert astroid_switching_field(0.0, 3.7e5) == pytest.approx(
            3.7e5)

    def test_45_degree_minimum_is_half_hk(self):
        assert astroid_switching_field(
            math.pi / 4, 3.7e5) == pytest.approx(0.5 * 3.7e5)

    def test_symmetric_about_45_degrees(self):
        a = astroid_switching_field(math.pi / 6, 3.7e5)
        b = astroid_switching_field(math.pi / 3, 3.7e5)
        assert a == pytest.approx(b, rel=1e-12)

    def test_minimum_at_45_degrees(self):
        angles = np.linspace(0.05, math.pi / 2 - 0.05, 30)
        h = astroid_switching_field(angles, 3.7e5)
        assert np.argmin(h) == pytest.approx(len(angles) // 2, abs=2)

    def test_out_of_range_rejected(self):
        with pytest.raises(ParameterError):
            astroid_switching_field(-0.1, 3.7e5)
        with pytest.raises(ParameterError):
            astroid_switching_field(2.0, 3.7e5)

    def test_vectorized(self):
        angles = np.array([0.0, math.pi / 4, math.pi / 2])
        h = astroid_switching_field(angles, 1.0)
        # cos(pi/2) is not exactly zero in floating point.
        np.testing.assert_allclose(h, [1.0, 0.5, 1.0], rtol=1e-9)


class TestLLGValidation:
    @pytest.mark.slow
    def test_llg_matches_astroid_at_45_degrees(self, params):
        hsw = simulate_switching_field(params, math.pi / 4, n_steps=40)
        expected = astroid_switching_field(math.pi / 4, params.hk)
        assert hsw == pytest.approx(expected, rel=0.10)

    @pytest.mark.slow
    def test_llg_matches_astroid_at_30_degrees(self, params):
        psi = math.pi / 6
        hsw = simulate_switching_field(params, psi, n_steps=40)
        expected = astroid_switching_field(psi, params.hk)
        assert hsw == pytest.approx(expected, rel=0.10)

    def test_unreachable_ramp_raises(self, params):
        with pytest.raises(SimulationError):
            simulate_switching_field(params, math.pi / 4,
                                     h_max_ratio=0.2, n_steps=5)

    def test_angle_validation(self, params):
        with pytest.raises(ParameterError):
            simulate_switching_field(params, 0.0)
