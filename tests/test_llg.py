"""Tests for the stochastic LLG macrospin solver."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.device import MTJDevice, PAPER_EVAL_DEVICE
from repro.errors import ParameterError
from repro.llg import (
    HeunIntegrator,
    MacrospinParameters,
    SwitchingSimulation,
    effective_field,
    equilibrium_ensemble,
    llgs_rhs,
    relax,
    slonczewski_field,
    stt_critical_current,
    thermal_field_sigma,
)
from repro.llg.simulate import default_time_step, thermal_initial_tilt


@pytest.fixture
def params():
    return MacrospinParameters.from_device(MTJDevice(PAPER_EVAL_DEVICE))


class TestParameters:
    def test_delta_matches_device(self, params):
        # Activation volume makes the macrospin Delta equal the measured
        # Delta0 = 45.5.
        assert params.delta == pytest.approx(45.5, rel=1e-6)

    def test_geometric_volume_option(self):
        device = MTJDevice(PAPER_EVAL_DEVICE)
        geo = MacrospinParameters.from_device(
            device, use_activation_volume=False)
        assert geo.volume == pytest.approx(device.fl_volume)
        assert geo.delta > 45.5

    def test_moment(self, params):
        assert params.moment == pytest.approx(params.ms * params.volume)


class TestThresholds:
    def test_llg_threshold_equals_eq2(self, params):
        # The macrospin instability current must equal the paper's Eq. 2
        # intrinsic Ic0 (same identity, independent derivation).
        device = MTJDevice(PAPER_EVAL_DEVICE)
        assert stt_critical_current(params) == pytest.approx(
            device.ic0(), rel=1e-9)

    def test_field_shifts_threshold(self, params):
        h = -0.07 * params.hk
        up = stt_critical_current(params, h, "AP->P")
        down = stt_critical_current(params, h, "P->AP")
        base = stt_critical_current(params)
        assert up == pytest.approx(base * 1.07, rel=1e-9)
        assert down == pytest.approx(base * 0.93, rel=1e-9)

    def test_slonczewski_field_at_ic_is_alpha_hk(self, params):
        ic = stt_critical_current(params)
        a_j = slonczewski_field(ic, params.eta, params.ms, params.volume)
        assert a_j == pytest.approx(params.alpha * params.hk, rel=1e-9)


class TestDynamicsDeterministic:
    def test_norm_preserved(self, params):
        integrator = HeunIntegrator(params, default_time_step(params),
                                    thermal=False)
        rng = np.random.default_rng(0)
        m = np.array([0.3, 0.1, math.sqrt(1 - 0.3 ** 2 - 0.1 ** 2)])
        for _ in range(200):
            m = integrator.step(m, rng)
        assert np.linalg.norm(m) == pytest.approx(1.0, rel=1e-12)

    def test_relaxation_to_easy_axis(self, params):
        m0 = np.array([0.6, 0.0, 0.8])
        m = relax(params, m0, duration=20e-9)
        assert m[2] > 0.999

    def test_relaxation_preserves_hemisphere(self, params):
        m0 = np.array([0.6, 0.0, -0.8])
        m = relax(params, m0, duration=20e-9)
        assert m[2] < -0.999

    def test_precession_frequency(self, params):
        """One deterministic precession turn takes 2 pi/(gamma mu0 Hk)."""
        from repro.constants import GYROMAGNETIC_RATIO, MU0
        # Disable damping-dominated drift by using tiny alpha.
        slow = MacrospinParameters(
            ms=params.ms, hk=params.hk, volume=params.volume,
            alpha=1e-4, eta=params.eta)
        dt = default_time_step(slow, resolution=400.0)
        integrator = HeunIntegrator(slow, dt, thermal=False)
        rng = np.random.default_rng(0)
        m = np.array([0.1, 0.0, math.sqrt(1 - 0.01)])
        phases = []
        for _ in range(1200):
            m = integrator.step(m, rng)
            phases.append(math.atan2(m[1], m[0]))
        unwrapped = np.unwrap(phases)
        omega = abs(unwrapped[-1] - unwrapped[0]) / (1200 * dt)
        # Effective field ~ Hk * mz.
        expected = GYROMAGNETIC_RATIO * MU0 * slow.hk * abs(m[2])
        assert omega == pytest.approx(expected, rel=0.02)

    def test_effective_field_shape(self):
        m = np.zeros((4, 3))
        m[:, 2] = 1.0
        h = effective_field(m, 3.7e5, h_applied=np.array([0.0, 0.0, 1e4]))
        assert h.shape == (4, 3)
        np.testing.assert_allclose(h[:, 2], 3.7e5 + 1e4)

    def test_rhs_orthogonal_to_m(self, params):
        m = np.array([0.3, -0.2, 0.93])
        m /= np.linalg.norm(m)
        h = effective_field(m, params.hk)
        rhs = llgs_rhs(m, h, params, a_j=1e3)
        assert abs(np.dot(rhs, m)) < 1e-3 * np.linalg.norm(rhs)


class TestThermal:
    def test_sigma_scaling(self, params):
        s1 = thermal_field_sigma(params, 1e-12)
        s4 = thermal_field_sigma(params, 4e-12)
        assert s1 == pytest.approx(2 * s4)

    def test_initial_tilt_statistics(self, params):
        rng = np.random.default_rng(5)
        m = thermal_initial_tilt(params, rng, 4000, around=-1.0)
        assert np.all(m[:, 2] < 0)
        assert np.mean(m[:, 0] ** 2) == pytest.approx(
            1 / (2 * params.delta), rel=0.1)

    @pytest.mark.slow
    def test_equipartition(self, params):
        samples = equilibrium_ensemble(params, n_samples=256, rng=2)
        mx2 = float(np.mean(samples[:, 0] ** 2))
        assert mx2 == pytest.approx(1 / (2 * params.delta), rel=0.25)


class TestSwitching:
    def test_switches_above_threshold(self, params):
        sim = SwitchingSimulation(params, current=90e-6)
        result = sim.run(n_runs=24, max_time=40e-9, rng=3)
        assert result.switched_fraction > 0.9
        assert 0.1e-9 < result.mean_time < 40e-9

    def test_no_deterministic_switch_below_threshold(self, params):
        sim = SwitchingSimulation(params, current=20e-6, thermal=False)
        result = sim.run(n_runs=4, max_time=10e-9, rng=4)
        assert result.n_switched == 0

    def test_higher_current_faster(self, params):
        lo = SwitchingSimulation(params, current=80e-6).run(
            n_runs=24, max_time=60e-9, rng=5)
        hi = SwitchingSimulation(params, current=140e-6).run(
            n_runs=24, max_time=60e-9, rng=5)
        assert hi.mean_time < lo.mean_time

    @pytest.mark.slow
    def test_inverse_tw_linear_in_overdrive(self, params):
        """Sun's precessional law: 1/tw grows linearly with I - Ic."""
        currents = np.array([85e-6, 110e-6, 135e-6])
        rates = []
        for current in currents:
            res = SwitchingSimulation(params, current=current).run(
                n_runs=48, max_time=80e-9, rng=11)
            rates.append(1.0 / res.mean_time)
        rates = np.array(rates)
        # Linear fit quality: residual below 10 % of the range.
        coeffs = np.polyfit(currents, rates, 1)
        fit = np.polyval(coeffs, currents)
        residual = np.max(np.abs(fit - rates)) / (rates.max()
                                                  - rates.min())
        assert coeffs[0] > 0
        assert residual < 0.1

    def test_bad_initial_mz(self, params):
        sim = SwitchingSimulation(params, current=90e-6)
        with pytest.raises(ParameterError):
            sim.run(n_runs=2, initial_mz=0.5, rng=0)

    def test_result_statistics_require_switches(self, params):
        sim = SwitchingSimulation(params, current=20e-6, thermal=False)
        result = sim.run(n_runs=2, max_time=5e-9, rng=0)
        from repro.errors import SimulationError
        with pytest.raises(SimulationError):
            _ = result.mean_time
