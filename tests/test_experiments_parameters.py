"""Robustness tests: figure generators under non-default parameters.

Each experiment must remain internally consistent (not necessarily hit
the paper anchors) when run at other sizes, seeds, ranges, and
resolutions — a library user will call them that way.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    fig2a,
    fig2b,
    fig3c,
    fig3d,
    fig4a,
    fig4b,
    fig4c,
    fig5,
    fig6a,
    fig6b,
)

pytestmark = pytest.mark.integration


class TestFig2aVariants:
    def test_other_device_size(self):
        result = fig2a.run(ecd_nm=90.0)
        rows = dict((r[0], r[1]) for r in result.rows)
        assert rows["Hoffset"] > 0
        # eCD extraction adapts to the size.
        assert rows["eCD (from RP)"] == pytest.approx(90.0, abs=5.0)

    def test_different_seeds_differ(self):
        a = fig2a.run(seed=1)
        b = fig2a.run(seed=2)
        ra = dict((r[0], r[1]) for r in a.rows)
        rb = dict((r[0], r[1]) for r in b.rows)
        assert ra["Hsw_p"] != rb["Hsw_p"]

    def test_coarser_sweep(self):
        result = fig2a.run(n_points=400)
        assert result.series["R(H) loop"][0].shape == (400,)


class TestFig2bVariants:
    def test_other_seed_still_calibrates(self):
        result = fig2b.run(seed=7)
        rmse = [c for c in result.comparisons
                if "RMSE" in c.metric][0]
        assert rmse.measured < 25.0

    def test_curve_resolution(self):
        result = fig2b.run(curve_points=11)
        assert result.series["simulation"][0].shape == (11,)


class TestFieldMapVariants:
    def test_fig3c_other_size(self):
        result = fig3c.run(ecd_nm=35.0, n_per_axis=7)
        assert result.extras["field"].shape == (7 ** 3, 3)

    def test_fig3d_resolution(self):
        result = fig3d.run(n_points=21)
        for name, (x, y) in result.series.items():
            assert x.shape == (21,)


class TestCouplingVariants:
    def test_fig4a_other_geometry(self):
        result = fig4a.run(ecd_nm=35.0, pitch_nm=70.0)
        table = result.extras["class_table_oe"]
        # Structure holds at any geometry even if anchors differ.
        assert table[(0, 0)] < table[(4, 4)]
        assert len(table) == 25

    def test_fig4b_coarse(self):
        result = fig4b.run(n_pitches=10)
        thresholds = result.extras["thresholds_nm"]
        assert thresholds[20.0] < thresholds[55.0]

    def test_fig4c_narrow_range(self):
        result = fig4c.run(pitch_min_nm=60.0, pitch_max_nm=120.0,
                           n_pitches=7)
        assert len(result.rows) == 7


class TestImpactVariants:
    def test_fig5_voltage_window(self):
        result = fig5.run(v_min=0.85, v_max=1.1, n_voltages=6)
        finite = [r for r in result.rows if np.isfinite(r[1])]
        assert finite

    def test_fig6a_temperature_window(self):
        result = fig6a.run(t_min_c=25.0, t_max_c=125.0, n_temps=5)
        assert result.rows[0][0] == pytest.approx(25.0)
        assert result.rows[-1][0] == pytest.approx(125.0)

    def test_fig6a_other_pitch(self):
        result = fig6a.run(pitch_ratio=1.5)
        assert result.extras["pitch_ratio"] == 1.5

    def test_fig6b_resolution(self):
        result = fig6b.run(n_temps=4)
        assert len(result.rows) == 4
